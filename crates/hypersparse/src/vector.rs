//! Sparse vectors — frontiers, reductions, and DNN activations.

use semiring::traits::{Monoid, Semiring, UnaryOp, Value};

use crate::dcsr::Dcsr;
use crate::error::OpError;
use crate::index::IndexType;
use crate::Ix;

/// A sparse vector over a `u64` key space: parallel sorted `(idx, val)`
/// arrays, no stored semiring zeros. `I` is the physical index width
/// (defaults to the global [`Ix`]; see DESIGN.md §13).
#[derive(Clone, Debug, PartialEq)]
pub struct SparseVec<T, I: IndexType = Ix> {
    dim: Ix,
    idx: Vec<I>,
    vals: Vec<T>,
}

impl<T: Value, I: IndexType> SparseVec<T, I> {
    /// The empty vector of dimension `dim`.
    pub fn empty(dim: Ix) -> Self {
        debug_assert!(
            dim <= I::MAX_DIM,
            "dimension {dim} exceeds a {} bit index",
            I::BITS
        );
        SparseVec {
            dim,
            idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Build from unsorted entries; duplicates ⊕-merge, zeros drop.
    pub fn from_entries<S: Semiring<Value = T>>(dim: Ix, mut entries: Vec<(Ix, T)>, s: S) -> Self {
        entries.sort_by_key(|e| e.0);
        let mut idx: Vec<I> = Vec::with_capacity(entries.len());
        let mut vals: Vec<T> = Vec::with_capacity(entries.len());
        for (i, v) in entries {
            assert!(i < dim, "index {i} outside dimension {dim}");
            let i = I::from_ix(i);
            if idx.last() == Some(&i) {
                let last = vals.last_mut().expect("parallel arrays");
                s.add_assign(last, v);
            } else {
                idx.push(i);
                vals.push(v);
            }
        }
        // Drop zeros after merging (a merge can cancel to zero).
        let mut out = SparseVec::empty(dim);
        for (i, v) in idx.into_iter().zip(vals) {
            if !s.is_zero(&v) {
                out.idx.push(i);
                out.vals.push(v);
            }
        }
        out
    }

    /// Assemble from pre-sorted, deduplicated, zero-free parts.
    pub fn from_sorted_parts(dim: Ix, idx: Vec<I>, vals: Vec<T>) -> Self {
        debug_assert_eq!(idx.len(), vals.len());
        debug_assert!(idx.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(idx.iter().all(|&i| i.to_ix() < dim));
        SparseVec { dim, idx, vals }
    }

    /// Dimension of the key space.
    pub fn dim(&self) -> Ix {
        self.dim
    }

    /// Stored entries.
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// Sorted indices of stored entries (in the physical width `I`).
    pub fn indices(&self) -> &[I] {
        &self.idx
    }

    /// Values, parallel to [`SparseVec::indices`].
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// Point lookup.
    pub fn get(&self, i: &Ix) -> Option<&T> {
        let i = I::try_from_ix(*i)?;
        self.idx.binary_search(&i).ok().map(|k| &self.vals[k])
    }

    /// Iterate `(index, &value)` in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Ix, &T)> + '_ {
        self.idx.iter().map(|i| i.to_ix()).zip(self.vals.iter())
    }

    /// Element-wise union-combine with another vector: present-in-one
    /// entries pass through, present-in-both entries ⊕-combine.
    pub fn ewise_add<S: Semiring<Value = T>>(&self, other: &Self, s: S) -> Self {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        let mut idx = Vec::with_capacity(self.nnz() + other.nnz());
        let mut vals = Vec::with_capacity(self.nnz() + other.nnz());
        let (mut i, mut j) = (0, 0);
        while i < self.idx.len() || j < other.idx.len() {
            let take_left =
                j >= other.idx.len() || (i < self.idx.len() && self.idx[i] < other.idx[j]);
            let take_both =
                i < self.idx.len() && j < other.idx.len() && self.idx[i] == other.idx[j];
            if take_both {
                let v = s.add(self.vals[i].clone(), other.vals[j].clone());
                if !s.is_zero(&v) {
                    idx.push(self.idx[i]);
                    vals.push(v);
                }
                i += 1;
                j += 1;
            } else if take_left {
                idx.push(self.idx[i]);
                vals.push(self.vals[i].clone());
                i += 1;
            } else {
                idx.push(other.idx[j]);
                vals.push(other.vals[j].clone());
                j += 1;
            }
        }
        SparseVec::from_sorted_parts(self.dim, idx, vals)
    }

    /// Element-wise intersection-combine: only present-in-both entries
    /// survive, ⊗-combined.
    pub fn ewise_mul<S: Semiring<Value = T>>(&self, other: &Self, s: S) -> Self {
        assert_eq!(self.dim, other.dim, "dimension mismatch");
        let mut idx = Vec::new();
        let mut vals = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.idx.len() && j < other.idx.len() {
            match self.idx[i].cmp(&other.idx[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let v = s.mul(self.vals[i].clone(), other.vals[j].clone());
                    if !s.is_zero(&v) {
                        idx.push(self.idx[i]);
                        vals.push(v);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        SparseVec::from_sorted_parts(self.dim, idx, vals)
    }

    /// Apply a unary operator to every stored value, dropping results that
    /// become the semiring zero.
    pub fn apply<S, O>(&self, op: O, s: S) -> Self
    where
        S: Semiring<Value = T>,
        O: UnaryOp<T, T>,
    {
        let mut idx = Vec::with_capacity(self.nnz());
        let mut vals = Vec::with_capacity(self.nnz());
        for (i, v) in self.iter() {
            let w = op.apply(v.clone());
            if !s.is_zero(&w) {
                idx.push(I::from_ix(i));
                vals.push(w);
            }
        }
        SparseVec::from_sorted_parts(self.dim, idx, vals)
    }

    /// Fold all stored values with a monoid.
    pub fn reduce<M: Monoid<T>>(&self, m: M) -> T {
        self.vals
            .iter()
            .fold(m.identity(), |acc, v| m.combine(acc, v.clone()))
    }

    /// Row-vector × matrix over a semiring: `(vᵀ A)(j) = ⊕_i v(i) ⊗ A(i,j)`.
    ///
    /// This is one BFS/SSSP step: scatter each frontier entry along its
    /// row of `A`, ⊕-merging collisions. `O(Σ_{i ∈ v} |A(i,:)|)` — cost
    /// proportional to the edges touched, independent of dimension.
    /// Thin wrapper over [`crate::ops::mxv::vxm`] (same outputs as the
    /// original sequential scatter; now segmented, parallel, metered).
    pub fn vxm<S: Semiring<Value = T>>(&self, a: &Dcsr<T, I>, s: S) -> Self {
        crate::ops::mxv::vxm(self, a, s)
    }

    /// Fallible [`SparseVec::vxm`]: dimension mismatch becomes an
    /// [`OpError`] instead of a panic.
    pub fn try_vxm<S: Semiring<Value = T>>(&self, a: &Dcsr<T, I>, s: S) -> Result<Self, OpError> {
        crate::ops::mxv::try_vxm(self, a, s)
    }

    /// Matrix × column-vector: `(A v)(i) = ⊕_j A(i,j) ⊗ v(j)` — a sparse
    /// dot product of each stored row with `v`.
    ///
    /// Thin wrapper over [`crate::ops::mxv::mxv`].
    pub fn mxv<S: Semiring<Value = T>>(a: &Dcsr<T, I>, v: &Self, s: S) -> Self {
        crate::ops::mxv::mxv(a, v, s)
    }

    /// Fallible [`SparseVec::mxv`].
    pub fn try_mxv<S: Semiring<Value = T>>(
        a: &Dcsr<T, I>,
        v: &Self,
        s: S,
    ) -> Result<Self, OpError> {
        crate::ops::mxv::try_mxv(a, v, s)
    }

    /// Restrict to indices where `keep` returns `false` → entry removed.
    pub fn select<F: Fn(Ix, &T) -> bool>(&self, keep: F) -> Self {
        let mut idx = Vec::new();
        let mut vals = Vec::new();
        for (i, v) in self.iter() {
            if keep(i, v) {
                idx.push(I::from_ix(i));
                vals.push(v.clone());
            }
        }
        SparseVec::from_sorted_parts(self.dim, idx, vals)
    }

    /// Structural complement-mask: drop entries whose index appears in
    /// `mask` (used by BFS to remove already-visited vertices).
    pub fn without(&self, mask: &Self) -> Self {
        self.select(|i, _| mask.get(&i).is_none())
    }

    /// Heap bytes.
    pub fn bytes(&self) -> usize {
        self.idx.len() * std::mem::size_of::<I>() + self.vals.len() * std::mem::size_of::<T>()
    }

    /// True when this vector's key space fits index width `J`.
    pub fn fits_index_width<J: IndexType>(&self) -> bool {
        self.dim <= J::MAX_DIM
    }

    /// Re-store with index width `J` (e.g. `u32` when `dim < 2³²` — the
    /// narrow-index fast path). `None` when the dimension does not fit.
    pub fn to_index_width<J: IndexType>(&self) -> Option<SparseVec<T, J>> {
        if !self.fits_index_width::<J>() {
            return None;
        }
        Some(SparseVec {
            dim: self.dim,
            idx: self.idx.iter().map(|&i| J::from_ix(i.to_ix())).collect(),
            vals: self.vals.clone(),
        })
    }

    /// Subvector by strictly increasing index selector, reindexed to the
    /// selector's positions (the vector analogue of matrix `extract`).
    pub fn extract(&self, sel: &[Ix]) -> Self {
        debug_assert!(sel.windows(2).all(|w| w[0] < w[1]));
        let mut idx = Vec::new();
        let mut vals = Vec::new();
        for (pos, i) in sel.iter().enumerate() {
            if let Some(v) = self.get(i) {
                idx.push(I::from_usize(pos));
                vals.push(v.clone());
            }
        }
        SparseVec::from_sorted_parts(sel.len() as Ix, idx, vals)
    }

    /// The stored entry with the ⊕-maximal value under a total-order
    /// comparison of values, if any (`argmax`-style readout; ties go to
    /// the smallest index).
    pub fn arg_best<F: Fn(&T, &T) -> std::cmp::Ordering>(&self, cmp: F) -> Option<(Ix, &T)> {
        self.iter().reduce(|best, cand| {
            if cmp(cand.1, best.1) == std::cmp::Ordering::Greater {
                cand
            } else {
                best
            }
        })
    }

    /// Materialize as a dense `Vec` with `zero` in absent slots. Panics if
    /// the dimension cannot be materialized.
    pub fn to_dense(&self, zero: T) -> Vec<T> {
        let n = usize::try_from(self.dim).expect("dense vector dimension");
        let mut out = vec![zero; n];
        for (i, v) in self.iter() {
            out[i as usize] = v.clone();
        }
        out
    }

    /// Build from a dense slice, dropping semiring zeros.
    pub fn from_dense<S: Semiring<Value = T>>(dense: &[T], s: S) -> Self {
        let mut idx = Vec::new();
        let mut vals = Vec::new();
        for (i, v) in dense.iter().enumerate() {
            if !s.is_zero(v) {
                idx.push(I::from_usize(i));
                vals.push(v.clone());
            }
        }
        SparseVec::from_sorted_parts(dense.len() as Ix, idx, vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use semiring::{MinPlus, PlusTimes, Relu};

    fn pt() -> PlusTimes<f64> {
        PlusTimes::new()
    }

    #[test]
    fn from_entries_merges_and_drops_zeros() {
        let v: SparseVec<f64> =
            SparseVec::from_entries(10, vec![(3, 1.0), (3, 2.0), (5, 0.0), (1, 4.0)], pt());
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.get(&3), Some(&3.0));
        assert_eq!(v.get(&5), None);
        assert_eq!(v.indices(), &[1, 3]);
    }

    #[test]
    fn ewise_add_union_semantics() {
        let a: SparseVec<f64> = SparseVec::from_entries(8, vec![(1, 1.0), (3, 3.0)], pt());
        let b = SparseVec::from_entries(8, vec![(3, -3.0), (5, 5.0)], pt());
        let c = a.ewise_add(&b, pt());
        assert_eq!(c.get(&1), Some(&1.0));
        assert_eq!(c.get(&3), None); // cancelled to zero → dropped
        assert_eq!(c.get(&5), Some(&5.0));
    }

    #[test]
    fn ewise_mul_intersection_semantics() {
        let a: SparseVec<f64> = SparseVec::from_entries(8, vec![(1, 2.0), (3, 3.0)], pt());
        let b = SparseVec::from_entries(8, vec![(3, 4.0), (5, 5.0)], pt());
        let c = a.ewise_mul(&b, pt());
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(&3), Some(&12.0));
    }

    #[test]
    fn vxm_is_frontier_expansion() {
        // 0→1 (w 1.5), 0→2 (w 2.0), 1→2 (w 0.1)
        let mut c = Coo::new(3, 3);
        c.extend([(0, 1, 1.5), (0, 2, 2.0), (1, 2, 0.1)]);
        let a = c.build_dcsr(MinPlus::<f64>::new());
        let f = SparseVec::from_entries(3, vec![(0, 0.0)], MinPlus::<f64>::new());
        let d1 = f.vxm(&a, MinPlus::<f64>::new());
        assert_eq!(d1.get(&1), Some(&1.5));
        assert_eq!(d1.get(&2), Some(&2.0));
        // Second hop: min(2.0 direct, 1.5 + 0.1 via 1) = 1.6.
        let d2 = d1.vxm(&a, MinPlus::<f64>::new());
        assert_eq!(d2.get(&2), Some(&1.6));
    }

    #[test]
    fn mxv_matches_vxm_on_transpose_free_symmetric() {
        let mut c = Coo::new(3, 3);
        c.extend([(0, 1, 2.0), (1, 0, 2.0), (1, 2, 3.0), (2, 1, 3.0)]);
        let a = c.build_dcsr(pt());
        let v = SparseVec::from_entries(3, vec![(0, 1.0), (2, 1.0)], pt());
        let av = SparseVec::mxv(&a, &v, pt());
        let va = v.vxm(&a, pt());
        assert_eq!(av, va); // A symmetric ⇒ Av = vᵀA
    }

    #[test]
    fn apply_relu_drops_rectified_entries() {
        let v: SparseVec<f64> = SparseVec::from_entries(4, vec![(0, -1.0), (1, 2.0)], pt());
        let r = v.apply(Relu(0.0), pt());
        assert_eq!(r.nnz(), 1);
        assert_eq!(r.get(&1), Some(&2.0));
    }

    #[test]
    fn reduce_folds_monoid() {
        use semiring::PlusMonoid;
        let v: SparseVec<f64> = SparseVec::from_entries(4, vec![(0, 1.0), (2, 2.5)], pt());
        assert_eq!(v.reduce(PlusMonoid::<f64>::default()), 3.5);
    }

    #[test]
    fn without_masks_visited() {
        let v: SparseVec<f64> =
            SparseVec::from_entries(8, vec![(1, 1.0), (2, 1.0), (3, 1.0)], pt());
        let seen = SparseVec::from_entries(8, vec![(2, 9.0)], pt());
        let unseen = v.without(&seen);
        assert_eq!(unseen.indices(), &[1, 3]);
    }

    #[test]
    fn extract_reindexes_vector() {
        let v: SparseVec<f64> =
            SparseVec::from_entries(10, vec![(2, 2.0), (5, 5.0), (9, 9.0)], pt());
        let sub = v.extract(&[2, 3, 9]);
        assert_eq!(sub.dim(), 3);
        assert_eq!(sub.get(&0), Some(&2.0)); // old index 2
        assert_eq!(sub.get(&1), None); // old index 3 was absent
        assert_eq!(sub.get(&2), Some(&9.0));
    }

    #[test]
    fn arg_best_finds_max() {
        let v: SparseVec<f64> =
            SparseVec::from_entries(10, vec![(2, 2.0), (5, 9.0), (7, 9.0)], pt());
        let (i, x) = v.arg_best(|a, b| a.partial_cmp(b).unwrap()).unwrap();
        assert_eq!((i, *x), (5, 9.0)); // tie → smallest index
        assert!(SparseVec::<f64>::empty(4)
            .arg_best(|a, b| a.partial_cmp(b).unwrap())
            .is_none());
    }

    #[test]
    fn dense_round_trip() {
        let v: SparseVec<f64> = SparseVec::from_entries(5, vec![(1, 1.0), (4, 4.0)], pt());
        let d = v.to_dense(0.0);
        assert_eq!(d, vec![0.0, 1.0, 0.0, 0.0, 4.0]);
        assert_eq!(SparseVec::from_dense(&d, pt()), v);
    }

    #[test]
    fn narrow_vector_round_trips_and_shrinks() {
        let v = SparseVec::from_entries(1000, vec![(1, 1.0), (999, 4.0)], pt());
        let narrow: SparseVec<f64, u32> = v.to_index_width().unwrap();
        assert_eq!(narrow.get(&999), Some(&4.0));
        assert!(narrow.bytes() < v.bytes());
        assert_eq!(narrow.to_index_width::<u64>().unwrap(), v);
        let huge = SparseVec::<f64>::empty(1 << 40);
        assert!(huge.to_index_width::<u32>().is_none());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dim_mismatch_panics() {
        let a = SparseVec::<f64>::empty(3);
        let b = SparseVec::<f64>::empty(4);
        let _ = a.ewise_add(&b, pt());
    }
}
