//! Bitmap storage — full value array plus a presence bit per cell.
//!
//! SuiteSparse:GraphBLAS added the bitmap format for matrices too dense
//! for CSR overheads but too sparse (or too mutation-heavy) for full
//! storage: random insert/delete is O(1), and "zero-ness" is tracked by
//! the bit rather than by a sentinel value, so it works for value types
//! with no natural zero.

use semiring::traits::{Semiring, Value};

use crate::dcsr::Dcsr;
use crate::Ix;

/// Bitmap matrix: one presence bit and one (possibly default) value slot
/// per cell.
#[derive(Clone, Debug, PartialEq)]
pub struct Bitmap<T> {
    nrows: Ix,
    ncols: Ix,
    present: Vec<u64>, // bitset of nrows*ncols bits
    data: Vec<T>,      // nrows*ncols slots; absent slots hold `fill`
    fill: T,
    nnz: usize,
}

impl<T: Value> Bitmap<T> {
    /// An empty matrix whose vacant slots hold `fill`.
    pub fn new(nrows: Ix, ncols: Ix, fill: T) -> Self {
        let cells = usize::try_from(nrows)
            .ok()
            .and_then(|r| usize::try_from(ncols).ok().and_then(|c| r.checked_mul(c)))
            .expect("bitmap dimensions overflow");
        Bitmap {
            nrows,
            ncols,
            present: vec![0; cells.div_ceil(64)],
            data: vec![fill.clone(); cells],
            fill,
            nnz: 0,
        }
    }

    /// Materialize a sparse matrix as a bitmap, with the semiring zero as
    /// the vacant fill.
    pub fn from_dcsr<S: Semiring<Value = T>>(m: &Dcsr<T>, s: S) -> Self {
        let mut b = Bitmap::new(m.nrows(), m.ncols(), s.zero());
        for (r, c, v) in m.iter() {
            b.set(r, c, v.clone());
        }
        b
    }

    /// Compress to hypersparse (presence bits drive inclusion; values are
    /// not re-tested against zero — the bitmap is authoritative).
    pub fn to_dcsr(&self) -> Dcsr<T> {
        let mut rows = Vec::new();
        let mut rowptr = vec![0usize];
        let mut colidx = Vec::new();
        let mut vals = Vec::new();
        for r in 0..self.nrows {
            let start = colidx.len();
            for c in 0..self.ncols {
                if self.contains(r, c) {
                    colidx.push(c);
                    vals.push(self.data[self.offset(r, c)].clone());
                }
            }
            if colidx.len() > start {
                rows.push(r);
                rowptr.push(colidx.len());
            }
        }
        Dcsr::from_parts(self.nrows, self.ncols, rows, rowptr, colidx, vals)
    }

    /// Row dimension.
    pub fn nrows(&self) -> Ix {
        self.nrows
    }

    /// Column dimension.
    pub fn ncols(&self) -> Ix {
        self.ncols
    }

    /// Stored entries.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// `true` if the cell is occupied.
    pub fn contains(&self, row: Ix, col: Ix) -> bool {
        let o = self.offset(row, col);
        self.present[o / 64] >> (o % 64) & 1 == 1
    }

    /// Point lookup.
    pub fn get(&self, row: Ix, col: Ix) -> Option<&T> {
        if self.contains(row, col) {
            Some(&self.data[self.offset(row, col)])
        } else {
            None
        }
    }

    /// O(1) random insert/overwrite — the operation this format exists for.
    pub fn set(&mut self, row: Ix, col: Ix, v: T) {
        let o = self.offset(row, col);
        if self.present[o / 64] >> (o % 64) & 1 == 0 {
            self.present[o / 64] |= 1 << (o % 64);
            self.nnz += 1;
        }
        self.data[o] = v;
    }

    /// O(1) delete. Returns `true` if the cell was occupied.
    pub fn remove(&mut self, row: Ix, col: Ix) -> bool {
        let o = self.offset(row, col);
        if self.present[o / 64] >> (o % 64) & 1 == 1 {
            self.present[o / 64] &= !(1 << (o % 64));
            self.data[o] = self.fill.clone();
            self.nnz -= 1;
            true
        } else {
            false
        }
    }

    /// Iterate occupied cells in `(row, col)` order.
    pub fn iter(&self) -> impl Iterator<Item = (Ix, Ix, &T)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            (0..self.ncols).filter_map(move |c| self.get(r, c).map(|v| (r, c, v)))
        })
    }

    /// Heap bytes: value slots plus one bit per cell.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>() + self.present.len() * 8
    }

    fn offset(&self, row: Ix, col: Ix) -> usize {
        assert!(row < self.nrows && col < self.ncols, "index out of bounds");
        row as usize * self.ncols as usize + col as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use semiring::PlusTimes;

    #[test]
    fn set_get_remove() {
        let mut b = Bitmap::new(4, 4, 0.0f64);
        assert_eq!(b.get(1, 1), None);
        b.set(1, 1, 5.0);
        assert_eq!(b.get(1, 1), Some(&5.0));
        assert_eq!(b.nnz(), 1);
        b.set(1, 1, 6.0); // overwrite does not double-count
        assert_eq!(b.nnz(), 1);
        assert!(b.remove(1, 1));
        assert!(!b.remove(1, 1));
        assert_eq!(b.nnz(), 0);
    }

    #[test]
    fn explicit_zero_is_representable() {
        // Unlike dense-with-sentinel, the bitmap can store a value equal
        // to the fill and still know the cell is occupied.
        let mut b = Bitmap::new(2, 2, 0.0f64);
        b.set(0, 0, 0.0);
        assert!(b.contains(0, 0));
        assert_eq!(b.nnz(), 1);
    }

    #[test]
    fn dcsr_round_trip() {
        let mut c = Coo::new(5, 5);
        c.extend([(0, 4, 1.0), (2, 2, 2.0), (4, 0, 3.0)]);
        let d = c.build_dcsr(PlusTimes::<f64>::new());
        let b = Bitmap::from_dcsr(&d, PlusTimes::<f64>::new());
        assert_eq!(b.nnz(), 3);
        assert_eq!(b.to_dcsr(), d);
    }

    #[test]
    fn iter_is_row_major() {
        let mut b = Bitmap::new(3, 3, 0i64);
        b.set(2, 0, 1);
        b.set(0, 2, 2);
        let order: Vec<_> = b.iter().map(|(r, c, &v)| (r, c, v)).collect();
        assert_eq!(order, vec![(0, 2, 2), (2, 0, 1)]);
    }

    #[test]
    fn bytes_has_bit_overhead() {
        let b = Bitmap::new(64, 64, 0.0f64);
        // 4096 cells: 4096 f64 slots + 64 u64 words of bits.
        assert_eq!(b.bytes(), 4096 * 8 + 64 * 8);
    }
}
