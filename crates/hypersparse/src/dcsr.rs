//! Doubly-compressed sparse rows — the *hypersparse* format.
//!
//! Classic CSR spends one pointer per row, which is fatal when the row
//! key space is ~2⁶⁰ but only a few thousand rows are occupied. DCSR
//! (Buluç & Gilbert 2008, cited as the paper's hypersparse foundation)
//! stores the sorted list of non-empty row ids next to their extents, so
//! the entire structure is `O(nnz)`.
//!
//! `Dcsr` is also this crate's *compute* format: every binary kernel in
//! [`crate::ops`] canonicalizes its operands to DCSR. Invariants (checked
//! in debug builds):
//!
//! * `rows` strictly increasing; every listed row non-empty;
//! * `rowptr.len() == rows.len() + 1`, non-decreasing, bracketing `colidx`;
//! * column ids strictly increasing within each row;
//! * no stored value is the semiring zero (enforced at construction by
//!   builders — the struct itself is semiring-agnostic).
//!
//! The second type parameter `I` selects the *physical* column-id width
//! (DESIGN.md §13): `Dcsr<T>` stores wide [`Ix`] ids; `Dcsr<T, u32>`
//! (from [`Dcsr::to_index_width`], legal when both dims fit
//! [`IndexType::MAX_DIM`]) halves column-index bandwidth on every kernel
//! inner loop. Row ids and row pointers stay wide — they are touched
//! once per *row*, not once per *entry*, so narrowing them buys nothing.

use semiring::traits::Value;

use crate::index::{dims_fit, IndexType};
use crate::Ix;

/// Hypersparse matrix: only non-empty rows are represented. `I` is the
/// physical column-id width (defaults to the global [`Ix`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Dcsr<T, I: IndexType = Ix> {
    nrows: Ix,
    ncols: Ix,
    rows: Vec<Ix>,
    rowptr: Vec<usize>,
    colidx: Vec<I>,
    vals: Vec<T>,
}

impl<T: Value, I: IndexType> Dcsr<T, I> {
    /// An empty `nrows × ncols` matrix.
    pub fn empty(nrows: Ix, ncols: Ix) -> Self {
        debug_assert!(
            dims_fit::<I>(nrows, ncols),
            "key space {nrows}×{ncols} exceeds a {} bit index",
            I::BITS
        );
        Dcsr {
            nrows,
            ncols,
            rows: Vec::new(),
            rowptr: vec![0],
            colidx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Assemble from raw parts. Debug-asserts all structural invariants.
    pub fn from_parts(
        nrows: Ix,
        ncols: Ix,
        rows: Vec<Ix>,
        rowptr: Vec<usize>,
        colidx: Vec<I>,
        vals: Vec<T>,
    ) -> Self {
        debug_assert!(dims_fit::<I>(nrows, ncols));
        debug_assert_eq!(rowptr.len(), rows.len() + 1);
        debug_assert_eq!(colidx.len(), vals.len());
        debug_assert_eq!(*rowptr.last().unwrap_or(&0), colidx.len());
        debug_assert!(
            rows.windows(2).all(|w| w[0] < w[1]),
            "row ids not strictly increasing"
        );
        debug_assert!(rows.iter().all(|&r| r < nrows));
        debug_assert!(rowptr.windows(2).all(|w| w[0] < w[1]), "empty row stored");
        debug_assert!(
            (0..rows.len()).all(|i| colidx[rowptr[i]..rowptr[i + 1]]
                .windows(2)
                .all(|w| w[0] < w[1])),
            "column ids not strictly increasing within a row"
        );
        debug_assert!(colidx.iter().all(|&c| c.to_ix() < ncols));
        Dcsr {
            nrows,
            ncols,
            rows,
            rowptr,
            colidx,
            vals,
        }
    }

    /// Row dimension of the key space.
    pub fn nrows(&self) -> Ix {
        self.nrows
    }

    /// Column dimension of the key space.
    pub fn ncols(&self) -> Ix {
        self.ncols
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// Number of non-empty rows.
    pub fn n_nonempty_rows(&self) -> usize {
        self.rows.len()
    }

    /// The sorted non-empty row ids.
    pub fn row_ids(&self) -> &[Ix] {
        &self.rows
    }

    /// Position of `row` in the non-empty row list, if occupied.
    pub fn find_row(&self, row: Ix) -> Option<usize> {
        self.rows.binary_search(&row).ok()
    }

    /// Stored entries of the `k`-th non-empty row (its A-row nnz) — the
    /// per-row weight the load-balanced shard planner works from.
    pub fn row_len_at(&self, k: usize) -> usize {
        self.rowptr[k + 1] - self.rowptr[k]
    }

    /// The `k`-th non-empty row as `(row_id, cols, vals)`.
    pub fn row_at(&self, k: usize) -> (Ix, &[I], &[T]) {
        let (lo, hi) = (self.rowptr[k], self.rowptr[k + 1]);
        (self.rows[k], &self.colidx[lo..hi], &self.vals[lo..hi])
    }

    /// Columns and values of `row`, or empty slices if the row is empty.
    pub fn row(&self, row: Ix) -> (&[I], &[T]) {
        match self.find_row(row) {
            Some(k) => {
                let (_, c, v) = self.row_at(k);
                (c, v)
            }
            None => (&[], &[]),
        }
    }

    /// Point lookup.
    pub fn get(&self, row: Ix, col: Ix) -> Option<&T> {
        let c = I::try_from_ix(col)?;
        let (cols, vals) = self.row(row);
        cols.binary_search(&c).ok().map(|i| &vals[i])
    }

    /// Iterate all entries in `(row, col)` order.
    pub fn iter(&self) -> impl Iterator<Item = (Ix, Ix, &T)> + '_ {
        (0..self.rows.len()).flat_map(move |k| {
            let (r, cols, vals) = self.row_at(k);
            cols.iter().zip(vals).map(move |(&c, v)| (r, c.to_ix(), v))
        })
    }

    /// Iterate non-empty rows as `(row_id, cols, vals)`.
    pub fn iter_rows(&self) -> impl Iterator<Item = (Ix, &[I], &[T])> + '_ {
        (0..self.rows.len()).map(move |k| self.row_at(k))
    }

    /// All entries as owned triplets (test/interop helper).
    pub fn to_triplets(&self) -> Vec<(Ix, Ix, T)> {
        self.iter().map(|(r, c, v)| (r, c, v.clone())).collect()
    }

    /// Heap bytes used by the index structure and values — the Fig. 4
    /// storage metric. `O(nnz)`: no term scales with `nrows`.
    pub fn bytes(&self) -> usize {
        self.rows.len() * std::mem::size_of::<Ix>()
            + self.rowptr.len() * std::mem::size_of::<usize>()
            + self.colidx.len() * std::mem::size_of::<I>()
            + self.vals.len() * std::mem::size_of::<T>()
    }

    /// Re-dimension the key space (e.g. after key-dictionary growth in the
    /// associative-array layer). Panics if any stored entry would fall
    /// outside the new bounds or the new bounds exceed the index width.
    pub fn resize(&mut self, nrows: Ix, ncols: Ix) {
        assert!(
            dims_fit::<I>(nrows, ncols),
            "resize target exceeds a {} bit index — widen first",
            I::BITS
        );
        assert!(self.rows.last().is_none_or(|&r| r < nrows));
        assert!(self.colidx.iter().all(|&c| c.to_ix() < ncols));
        self.nrows = nrows;
        self.ncols = ncols;
    }

    /// True when this matrix's key space fits index width `J`, i.e.
    /// [`Dcsr::to_index_width`] would succeed.
    pub fn fits_index_width<J: IndexType>(&self) -> bool {
        dims_fit::<J>(self.nrows, self.ncols)
    }

    /// Re-store with column-id width `J` (e.g. `u32` when both dims are
    /// `< 2³²` — the narrow-index fast path). `None` when the key space
    /// does not fit. `O(nnz)`; topology and values are unchanged.
    pub fn to_index_width<J: IndexType>(&self) -> Option<Dcsr<T, J>> {
        if !self.fits_index_width::<J>() {
            return None;
        }
        Some(Dcsr {
            nrows: self.nrows,
            ncols: self.ncols,
            rows: self.rows.clone(),
            rowptr: self.rowptr.clone(),
            colidx: self.colidx.iter().map(|&c| J::from_ix(c.to_ix())).collect(),
            vals: self.vals.clone(),
        })
    }

    /// Decompose into raw parts `(nrows, ncols, rows, rowptr, colidx, vals)`.
    #[allow(clippy::type_complexity)]
    pub fn into_parts(self) -> (Ix, Ix, Vec<Ix>, Vec<usize>, Vec<I>, Vec<T>) {
        (
            self.nrows,
            self.ncols,
            self.rows,
            self.rowptr,
            self.colidx,
            self.vals,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use semiring::PlusTimes;

    fn sample() -> Dcsr<f64> {
        let mut c = Coo::new(100, 100);
        c.extend([(5, 1, 1.0), (5, 7, 2.0), (50, 0, 3.0), (99, 99, 4.0)]);
        c.build_dcsr(PlusTimes::<f64>::new())
    }

    #[test]
    fn structure_queries() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.n_nonempty_rows(), 3);
        assert_eq!(m.row_ids(), &[5, 50, 99]);
        assert_eq!(m.row(5).0, &[1, 7]);
        assert_eq!(m.row(6), (&[][..], &[][..]));
        assert_eq!(m.get(50, 0), Some(&3.0));
        assert_eq!(m.get(50, 1), None);
        assert_eq!(m.row_len_at(0), 2);
        assert_eq!(m.row_len_at(1), 1);
    }

    #[test]
    fn iteration_is_row_major_sorted() {
        let m = sample();
        let trips: Vec<_> = m.iter().map(|(r, c, &v)| (r, c, v)).collect();
        assert_eq!(
            trips,
            vec![(5, 1, 1.0), (5, 7, 2.0), (50, 0, 3.0), (99, 99, 4.0)]
        );
    }

    #[test]
    fn bytes_independent_of_dimension() {
        let mut small = Coo::new(100, 100);
        small.push(1, 1, 1.0);
        let small = small.build_dcsr(PlusTimes::<f64>::new());

        let huge_n = 1u64 << 60;
        let mut huge = Coo::new(huge_n, huge_n);
        huge.push(1, 1, 1.0);
        let huge = huge.build_dcsr(PlusTimes::<f64>::new());

        assert_eq!(small.bytes(), huge.bytes());
    }

    #[test]
    fn empty_matrix() {
        let m = Dcsr::<f64>::empty(10, 10);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.iter().count(), 0);
        assert_eq!(m.get(0, 0), None);
    }

    #[test]
    fn resize_grows_key_space() {
        let mut m = sample();
        m.resize(1 << 40, 1 << 40);
        assert_eq!(m.nrows(), 1 << 40);
        assert_eq!(m.get(5, 7), Some(&2.0));
    }

    #[test]
    #[should_panic]
    fn resize_cannot_orphan_entries() {
        let mut m = sample();
        m.resize(10, 10); // row 50 and 99 out of bounds
    }

    #[test]
    fn narrow_round_trip_preserves_everything() {
        let m = sample();
        let narrow: Dcsr<f64, u32> = m.to_index_width().unwrap();
        assert_eq!(narrow.nnz(), m.nnz());
        assert_eq!(narrow.to_triplets(), m.to_triplets());
        assert_eq!(narrow.get(5, 7), Some(&2.0));
        let wide_again: Dcsr<f64> = narrow.to_index_width().unwrap();
        assert_eq!(wide_again, m);
    }

    #[test]
    fn narrow_refused_when_dims_exceed_width() {
        let mut c = Coo::new(1 << 40, 1 << 40);
        c.push(1, 1, 1.0);
        let m = c.build_dcsr(PlusTimes::<f64>::new());
        assert!(!m.fits_index_width::<u32>());
        assert!(m.to_index_width::<u32>().is_none());
        assert!(m.to_index_width::<u64>().is_some());
    }

    #[test]
    fn narrow_colidx_shrinks_bytes() {
        let m = sample();
        let narrow: Dcsr<f64, u32> = m.to_index_width().unwrap();
        assert!(narrow.bytes() < m.bytes());
        let saved = m.nnz() * (std::mem::size_of::<Ix>() - std::mem::size_of::<u32>());
        assert_eq!(m.bytes() - narrow.bytes(), saved);
    }

    #[test]
    #[should_panic]
    fn narrow_resize_beyond_width_panics() {
        let narrow: Dcsr<f64, u32> = sample().to_index_width().unwrap();
        let mut narrow = narrow;
        narrow.resize(1 << 40, 1 << 40);
    }
}
