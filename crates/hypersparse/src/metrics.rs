//! Per-kernel observability counters.
//!
//! SuiteSparse:GraphBLAS owes much of its production debuggability to
//! `GxB_*` introspection: you can ask the library what its kernels did.
//! This module is that layer for the hypersparse engine. Every
//! computational kernel routed through an [`crate::ctx::OpCtx`] records a
//! [`Kernel`]-keyed row of counters — calls, input/output nnz, flops
//! (semiring ⊗ applications, or combiner applications for merges),
//! bytes touched (operand + result heap footprint, the bandwidth the
//! narrow-index formats halve), and elapsed wall time — plus
//! engine-wide counters for storage-format switches and workspace-arena
//! hits/misses.
//!
//! All counters are relaxed atomics: recording from parallel shards is
//! race-free, and reading while kernels run yields a consistent-enough
//! view for reporting (exact totals require quiescence, which tests
//! have).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::trace::{
    write_prometheus_header, write_prometheus_histogram, Histogram, HistogramSnapshot,
};

/// Kernel identities tracked by the metrics registry.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Kernel {
    #[default]
    Mxm,
    MxmMasked,
    EwiseAdd,
    EwiseMul,
    EwiseUnion,
    ReduceRows,
    ReduceCols,
    ReduceScalar,
    Transpose,
    Apply,
    Select,
    Extract,
    Kron,
    Assign,
    ConcatRows,
    ConcatCols,
    Power,
    Vxm,
    Mxv,
    StreamMerge,
    ApplyPrune,
    DnnLayer,
    TopK,
    Rollup,
    DeltaFold,
    DeltaDegree,
    DeltaTri,
    PageRankRefresh,
    BfsParent,
}

impl Kernel {
    /// Every tracked kernel, in registry order.
    pub const ALL: [Kernel; 29] = [
        Kernel::Mxm,
        Kernel::MxmMasked,
        Kernel::EwiseAdd,
        Kernel::EwiseMul,
        Kernel::EwiseUnion,
        Kernel::ReduceRows,
        Kernel::ReduceCols,
        Kernel::ReduceScalar,
        Kernel::Transpose,
        Kernel::Apply,
        Kernel::Select,
        Kernel::Extract,
        Kernel::Kron,
        Kernel::Assign,
        Kernel::ConcatRows,
        Kernel::ConcatCols,
        Kernel::Power,
        Kernel::Vxm,
        Kernel::Mxv,
        Kernel::StreamMerge,
        Kernel::ApplyPrune,
        Kernel::DnnLayer,
        Kernel::TopK,
        Kernel::Rollup,
        Kernel::DeltaFold,
        Kernel::DeltaDegree,
        Kernel::DeltaTri,
        Kernel::PageRankRefresh,
        Kernel::BfsParent,
    ];

    /// Stable display name (`mxm`, `ewise_add`, …).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Mxm => "mxm",
            Kernel::MxmMasked => "mxm_masked",
            Kernel::EwiseAdd => "ewise_add",
            Kernel::EwiseMul => "ewise_mul",
            Kernel::EwiseUnion => "ewise_union",
            Kernel::ReduceRows => "reduce_rows",
            Kernel::ReduceCols => "reduce_cols",
            Kernel::ReduceScalar => "reduce_scalar",
            Kernel::Transpose => "transpose",
            Kernel::Apply => "apply",
            Kernel::Select => "select",
            Kernel::Extract => "extract",
            Kernel::Kron => "kron",
            Kernel::Assign => "assign",
            Kernel::ConcatRows => "concat_rows",
            Kernel::ConcatCols => "concat_cols",
            Kernel::Power => "power",
            Kernel::Vxm => "vxm",
            Kernel::Mxv => "mxv",
            Kernel::StreamMerge => "stream_merge",
            Kernel::ApplyPrune => "apply_prune",
            Kernel::DnnLayer => "dnn_layer",
            Kernel::TopK => "top_k",
            Kernel::Rollup => "rollup",
            Kernel::DeltaFold => "delta_fold",
            Kernel::DeltaDegree => "delta_degree",
            Kernel::DeltaTri => "delta_tri",
            Kernel::PageRankRefresh => "pagerank_refresh",
            Kernel::BfsParent => "bfs_parent",
        }
    }

    fn index(self) -> usize {
        Kernel::ALL.iter().position(|&k| k == self).expect("in ALL")
    }
}

/// Traversal direction chosen by the matrix–vector kernels
/// ([`mod@crate::ops::mxv`]): Beamer-style direction optimization picks per
/// call between scattering the sparse frontier (*push*) and gathering
/// over the transpose (*pull*).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Scatter each frontier entry along its row of `A`.
    Push,
    /// Gather into each output slot over a row of `Aᵀ`.
    Pull,
}

impl Direction {
    /// Stable display name (`push` / `pull`).
    pub fn name(self) -> &'static str {
        match self {
            Direction::Push => "push",
            Direction::Pull => "pull",
        }
    }
}

/// Live counters for one kernel.
#[derive(Debug, Default)]
pub struct KernelStats {
    calls: AtomicU64,
    elapsed_ns: AtomicU64,
    nnz_in: AtomicU64,
    nnz_out: AtomicU64,
    flops: AtomicU64,
    bytes_touched: AtomicU64,
    latency: Histogram,
}

impl KernelStats {
    /// Fold one completed kernel invocation into the counters. `bytes`
    /// is the heap footprint of operands plus result — the bandwidth
    /// proxy narrow indices shrink.
    pub fn record(&self, elapsed: Duration, nnz_in: u64, nnz_out: u64, flops: u64, bytes: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.elapsed_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.nnz_in.fetch_add(nnz_in, Ordering::Relaxed);
        self.nnz_out.fetch_add(nnz_out, Ordering::Relaxed);
        self.flops.fetch_add(flops, Ordering::Relaxed);
        self.bytes_touched.fetch_add(bytes, Ordering::Relaxed);
        self.latency.record(elapsed);
    }

    fn snapshot(&self, kernel: Kernel) -> KernelSnapshot {
        KernelSnapshot {
            kernel,
            calls: self.calls.load(Ordering::Relaxed),
            elapsed_ns: self.elapsed_ns.load(Ordering::Relaxed),
            nnz_in: self.nnz_in.load(Ordering::Relaxed),
            nnz_out: self.nnz_out.load(Ordering::Relaxed),
            flops: self.flops.load(Ordering::Relaxed),
            bytes_touched: self.bytes_touched.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
        }
    }

    fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.elapsed_ns.store(0, Ordering::Relaxed);
        self.nnz_in.store(0, Ordering::Relaxed);
        self.nnz_out.store(0, Ordering::Relaxed);
        self.flops.store(0, Ordering::Relaxed);
        self.bytes_touched.store(0, Ordering::Relaxed);
        self.latency.reset();
    }
}

/// Frozen counters for one kernel (what [`MetricsSnapshot`] hands out).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelSnapshot {
    /// Which kernel these counters describe.
    pub kernel: Kernel,
    /// Completed invocations.
    pub calls: u64,
    /// Total wall time across invocations, in nanoseconds.
    pub elapsed_ns: u64,
    /// Total stored entries across all inputs.
    pub nnz_in: u64,
    /// Total stored entries across all outputs.
    pub nnz_out: u64,
    /// Total useful algebraic work: ⊗ applications for multiplies,
    /// combiner applications for merges and reductions.
    pub flops: u64,
    /// Heap bytes of operands + results across invocations — the
    /// bandwidth proxy that makes narrow-index savings observable.
    pub bytes_touched: u64,
    /// Per-invocation latency distribution (log₂ buckets; p50/p95/p99
    /// via [`HistogramSnapshot::quantile`]).
    pub latency: HistogramSnapshot,
}

/// The per-context metrics registry: one [`KernelStats`] row per
/// [`Kernel`], plus engine-wide counters.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    stats: [KernelStats; Kernel::ALL.len()],
    format_switches: AtomicU64,
    ws_hits: AtomicU64,
    ws_misses: AtomicU64,
    mv_push: AtomicU64,
    mv_pull: AtomicU64,
    mask_probes: AtomicU64,
    mask_hits: AtomicU64,
}

impl MetricsRegistry {
    /// The live counter row for `kernel`.
    pub fn kernel(&self, kernel: Kernel) -> &KernelStats {
        &self.stats[kernel.index()]
    }

    /// Record one completed invocation of `kernel`. `bytes` is the heap
    /// footprint of operands plus result (see [`KernelStats::record`]).
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        kernel: Kernel,
        elapsed: Duration,
        nnz_in: u64,
        nnz_out: u64,
        flops: u64,
        bytes: u64,
    ) {
        self.kernel(kernel)
            .record(elapsed, nnz_in, nnz_out, flops, bytes);
    }

    /// Count one automatic storage-format change on a result matrix.
    pub fn record_format_switch(&self) {
        self.format_switches.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one workspace-arena acquisition served from the pool.
    pub(crate) fn record_ws_hit(&self) {
        self.ws_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one workspace-arena acquisition that had to allocate.
    pub(crate) fn record_ws_miss(&self) {
        self.ws_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the direction a matrix–vector kernel chose, plus its mask
    /// activity: `probes` complement-mask lookups of which `hits` found
    /// the index masked off (and skipped the work).
    pub fn record_mv_direction(&self, direction: Direction, probes: u64, hits: u64) {
        match direction {
            Direction::Push => self.mv_push.fetch_add(1, Ordering::Relaxed),
            Direction::Pull => self.mv_pull.fetch_add(1, Ordering::Relaxed),
        };
        self.mask_probes.fetch_add(probes, Ordering::Relaxed);
        self.mask_hits.fetch_add(hits, Ordering::Relaxed);
    }

    /// Freeze every counter into an owned snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            kernels: Kernel::ALL
                .iter()
                .map(|&k| self.kernel(k).snapshot(k))
                .collect(),
            format_switches: self.format_switches.load(Ordering::Relaxed),
            workspace_hits: self.ws_hits.load(Ordering::Relaxed),
            workspace_misses: self.ws_misses.load(Ordering::Relaxed),
            mv_push_calls: self.mv_push.load(Ordering::Relaxed),
            mv_pull_calls: self.mv_pull.load(Ordering::Relaxed),
            mask_probes: self.mask_probes.load(Ordering::Relaxed),
            mask_hits: self.mask_hits.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter.
    pub fn reset(&self) {
        for s in &self.stats {
            s.reset();
        }
        self.format_switches.store(0, Ordering::Relaxed);
        self.ws_hits.store(0, Ordering::Relaxed);
        self.ws_misses.store(0, Ordering::Relaxed);
        self.mv_push.store(0, Ordering::Relaxed);
        self.mv_pull.store(0, Ordering::Relaxed);
        self.mask_probes.store(0, Ordering::Relaxed);
        self.mask_hits.store(0, Ordering::Relaxed);
    }
}

/// A frozen view of a [`MetricsRegistry`].
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// One row per kernel, in [`Kernel::ALL`] order.
    pub kernels: Vec<KernelSnapshot>,
    /// Automatic storage-format changes recorded by the `Matrix` layer.
    pub format_switches: u64,
    /// Workspace acquisitions served by pooled scratch.
    pub workspace_hits: u64,
    /// Workspace acquisitions that had to allocate fresh scratch.
    pub workspace_misses: u64,
    /// Matrix–vector kernel invocations that ran in push direction.
    pub mv_push_calls: u64,
    /// Matrix–vector kernel invocations that ran in pull direction.
    pub mv_pull_calls: u64,
    /// Complement-mask lookups performed inside fused kernels.
    pub mask_probes: u64,
    /// Mask lookups that found the index masked off (work skipped).
    pub mask_hits: u64,
}

impl MetricsSnapshot {
    /// Fraction of complement-mask probes that skipped work
    /// (`0.0` when no masked kernel ran).
    pub fn mask_hit_rate(&self) -> f64 {
        if self.mask_probes == 0 {
            0.0
        } else {
            self.mask_hits as f64 / self.mask_probes as f64
        }
    }
    /// The counters for one kernel.
    pub fn kernel(&self, kernel: Kernel) -> KernelSnapshot {
        self.kernels
            .iter()
            .copied()
            .find(|k| k.kernel == kernel)
            .unwrap_or(KernelSnapshot {
                kernel,
                ..Default::default()
            })
    }

    /// Total completed kernel invocations.
    pub fn total_calls(&self) -> u64 {
        self.kernels.iter().map(|k| k.calls).sum()
    }

    /// Human-readable table of every kernel with activity.
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "kernel", "calls", "nnz_in", "nnz_out", "flops", "bytes", "elapsed"
        );
        for k in &self.kernels {
            if k.calls == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<14} {:>8} {:>12} {:>12} {:>12} {:>12} {:>9.3} ms",
                k.kernel.name(),
                k.calls,
                k.nnz_in,
                k.nnz_out,
                k.flops,
                k.bytes_touched,
                k.elapsed_ns as f64 / 1e6
            );
        }
        let _ = writeln!(
            out,
            "format switches: {} · workspace: {} hits / {} misses",
            self.format_switches, self.workspace_hits, self.workspace_misses
        );
        if self.mv_push_calls + self.mv_pull_calls > 0 {
            let _ = writeln!(
                out,
                "mxv direction: {} push / {} pull · mask: {} hits / {} probes ({:.0}%)",
                self.mv_push_calls,
                self.mv_pull_calls,
                self.mask_hits,
                self.mask_probes,
                self.mask_hit_rate() * 100.0
            );
        }
        out
    }

    /// Fraction of workspace acquisitions served from the pooled arena
    /// (`0.0` when none were attempted).
    pub fn workspace_hit_rate(&self) -> f64 {
        let total = self.workspace_hits + self.workspace_misses;
        if total == 0 {
            0.0
        } else {
            self.workspace_hits as f64 / total as f64
        }
    }

    /// Prometheus text exposition (format 0.0.4) of every counter and
    /// latency histogram: kernel rows become `hypersparse_kernel_*`
    /// series labelled by kernel (idle kernels are omitted), engine-wide
    /// counters and hit rates follow. Append the pipeline layer's
    /// exposition for a full service `/metrics` payload.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let active: Vec<&KernelSnapshot> = self.kernels.iter().filter(|k| k.calls > 0).collect();
        for (name, help, get) in [
            (
                "hypersparse_kernel_calls_total",
                "Completed kernel invocations.",
                (|k: &KernelSnapshot| k.calls) as fn(&KernelSnapshot) -> u64,
            ),
            (
                "hypersparse_kernel_nnz_in_total",
                "Stored entries across all kernel inputs.",
                |k| k.nnz_in,
            ),
            (
                "hypersparse_kernel_nnz_out_total",
                "Stored entries across all kernel outputs.",
                |k| k.nnz_out,
            ),
            (
                "hypersparse_kernel_flops_total",
                "Semiring operator applications.",
                |k| k.flops,
            ),
            (
                "hypersparse_kernel_bytes_touched_total",
                "Heap bytes of kernel operands and results.",
                |k| k.bytes_touched,
            ),
        ] {
            write_prometheus_header(&mut out, name, "counter", help);
            for k in &active {
                out.push_str(&format!(
                    "{name}{{kernel=\"{}\"}} {}\n",
                    k.kernel.name(),
                    get(k)
                ));
            }
        }
        write_prometheus_header(
            &mut out,
            "hypersparse_kernel_latency_seconds",
            "histogram",
            "Per-invocation kernel latency.",
        );
        for k in &active {
            write_prometheus_histogram(
                &mut out,
                "hypersparse_kernel_latency_seconds",
                &format!("kernel=\"{}\"", k.kernel.name()),
                &k.latency,
            );
        }
        for (name, help, v) in [
            (
                "hypersparse_format_switches_total",
                "Automatic storage-format changes.",
                self.format_switches,
            ),
            (
                "hypersparse_workspace_hits_total",
                "Workspace acquisitions served from the pooled arena.",
                self.workspace_hits,
            ),
            (
                "hypersparse_workspace_misses_total",
                "Workspace acquisitions that had to allocate.",
                self.workspace_misses,
            ),
            (
                "hypersparse_mask_probes_total",
                "Complement-mask lookups inside fused kernels.",
                self.mask_probes,
            ),
            (
                "hypersparse_mask_hits_total",
                "Mask lookups that skipped work.",
                self.mask_hits,
            ),
        ] {
            write_prometheus_header(&mut out, name, "counter", help);
            out.push_str(&format!("{name} {v}\n"));
        }
        write_prometheus_header(
            &mut out,
            "hypersparse_mxv_direction_calls_total",
            "counter",
            "Matrix-vector kernel invocations by chosen direction.",
        );
        out.push_str(&format!(
            "hypersparse_mxv_direction_calls_total{{direction=\"push\"}} {}\n",
            self.mv_push_calls
        ));
        out.push_str(&format!(
            "hypersparse_mxv_direction_calls_total{{direction=\"pull\"}} {}\n",
            self.mv_pull_calls
        ));
        for (name, help, v) in [
            (
                "hypersparse_workspace_hit_rate",
                "Fraction of workspace acquisitions served from the pool.",
                self.workspace_hit_rate(),
            ),
            (
                "hypersparse_mask_hit_rate",
                "Fraction of mask probes that skipped work.",
                self.mask_hit_rate(),
            ),
        ] {
            write_prometheus_header(&mut out, name, "gauge", help);
            out.push_str(&format!("{name} {v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot_round_trip() {
        let reg = MetricsRegistry::default();
        reg.record(Kernel::Mxm, Duration::from_micros(5), 10, 4, 30, 200);
        reg.record(Kernel::Mxm, Duration::from_micros(5), 10, 4, 30, 200);
        reg.record(Kernel::EwiseAdd, Duration::from_nanos(100), 7, 7, 3, 50);
        reg.record_format_switch();
        let snap = reg.snapshot();
        let m = snap.kernel(Kernel::Mxm);
        assert_eq!(m.calls, 2);
        assert_eq!(m.nnz_in, 20);
        assert_eq!(m.nnz_out, 8);
        assert_eq!(m.flops, 60);
        assert_eq!(m.bytes_touched, 400);
        assert_eq!(m.elapsed_ns, 10_000);
        assert_eq!(snap.kernel(Kernel::EwiseAdd).calls, 1);
        assert_eq!(snap.kernel(Kernel::Kron).calls, 0);
        assert_eq!(snap.format_switches, 1);
        assert_eq!(snap.total_calls(), 3);
        let report = snap.report();
        assert!(report.contains("mxm"));
        assert!(report.contains("ewise_add"));
        assert!(!report.contains("kron"), "idle kernels stay out:\n{report}");
    }

    #[test]
    fn reset_zeroes_everything() {
        let reg = MetricsRegistry::default();
        reg.record(Kernel::Transpose, Duration::from_micros(1), 5, 5, 5, 5);
        reg.record_ws_miss();
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.total_calls(), 0);
        assert_eq!(snap.workspace_misses, 0);
    }

    #[test]
    fn direction_and_mask_counters() {
        let reg = MetricsRegistry::default();
        reg.record_mv_direction(Direction::Push, 10, 4);
        reg.record_mv_direction(Direction::Pull, 6, 6);
        let snap = reg.snapshot();
        assert_eq!(snap.mv_push_calls, 1);
        assert_eq!(snap.mv_pull_calls, 1);
        assert_eq!(snap.mask_probes, 16);
        assert_eq!(snap.mask_hits, 10);
        assert!((snap.mask_hit_rate() - 10.0 / 16.0).abs() < 1e-12);
        assert!(snap.report().contains("mxv direction"), "{}", snap.report());
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.mv_push_calls, 0);
        assert_eq!(snap.mask_hit_rate(), 0.0);
        assert!(!snap.report().contains("mxv direction"));
    }

    #[test]
    fn every_kernel_has_a_distinct_name() {
        let names: std::collections::HashSet<_> = Kernel::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), Kernel::ALL.len());
    }
}
