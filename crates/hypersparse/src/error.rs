//! Fallible-operation errors for the `try_*` API on [`crate::Matrix`].
//!
//! The classic GraphBLAS-style methods (`mxm`, `ewise_add`, …) panic on
//! misuse, which is the right default for algorithm code but wrong for a
//! serving layer that must survive arbitrary inputs. The `try_*` twins
//! return `Result<_, OpError>` instead; the panicking methods are thin
//! wrappers that `panic!("{err}")`, so their messages (and every
//! `should_panic` contract) are unchanged.

use std::fmt;

use crate::Ix;

/// Why a `try_*` matrix operation could not run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpError {
    /// The operands' key spaces don't conform for the requested
    /// operation (inner dimensions of a multiply, shared key space of an
    /// element-wise op, the matching axis of a concatenation).
    DimensionMismatch {
        /// Which operation was attempted (`"mxm"`, `"ewise_add"`, …).
        op: &'static str,
        /// `(nrows, ncols)` of the left operand.
        a: (Ix, Ix),
        /// `(nrows, ncols)` of the right operand.
        b: (Ix, Ix),
        /// The conformance rule that failed, phrased as the panicking
        /// API phrases it (e.g. `"inner dimensions differ"`).
        rule: &'static str,
    },
    /// A selector index points outside the matrix's key space.
    IndexOutOfBounds {
        /// Which axis the index addressed.
        axis: Axis,
        /// The offending index.
        index: Ix,
        /// The exclusive bound it had to stay under.
        bound: Ix,
    },
    /// The result's key space cannot be represented (dimension
    /// arithmetic overflows the 64-bit index space).
    TooLargeToMaterialize {
        /// Which operation was attempted.
        op: &'static str,
        /// Which axis overflowed.
        axis: Axis,
        /// The two extents whose sum/product overflowed.
        extents: (Ix, Ix),
    },
}

/// Which matrix axis an [`OpError`] refers to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Axis {
    /// The row dimension.
    Rows,
    /// The column dimension.
    Cols,
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::Rows => write!(f, "row"),
            Axis::Cols => write!(f, "col"),
        }
    }
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpError::DimensionMismatch { op, a, b, rule } => {
                write!(f, "{op}: {rule}: {}×{} vs {}×{}", a.0, a.1, b.0, b.1)
            }
            OpError::IndexOutOfBounds { axis, index, bound } => {
                write!(f, "{axis} index {index} out of bounds (< {bound})")
            }
            OpError::TooLargeToMaterialize { op, axis, extents } => write!(
                f,
                "{op}: {axis} overflow: result dimension {} + {} exceeds the index space",
                extents.0, extents.1
            ),
        }
    }
}

impl std::error::Error for OpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_mismatch_keeps_legacy_phrases() {
        let e = OpError::DimensionMismatch {
            op: "mxm",
            a: (3, 4),
            b: (5, 3),
            rule: "inner dimensions differ",
        };
        let msg = e.to_string();
        assert!(msg.contains("inner dimensions differ"), "{msg}");
        assert!(msg.contains("3×4"), "{msg}");
    }

    #[test]
    fn index_out_of_bounds_names_axis_and_bound() {
        let e = OpError::IndexOutOfBounds {
            axis: Axis::Cols,
            index: 99,
            bound: 10,
        };
        let msg = e.to_string();
        assert!(msg.contains("col index 99"), "{msg}");
        assert!(msg.contains("< 10"), "{msg}");
    }

    #[test]
    fn too_large_mentions_overflow() {
        let e = OpError::TooLargeToMaterialize {
            op: "concat_rows",
            axis: Axis::Rows,
            extents: (u64::MAX, 2),
        };
        let msg = e.to_string();
        assert!(msg.contains("row overflow"), "{msg}");
        assert!(msg.contains("concat_rows"), "{msg}");
    }

    #[test]
    fn is_a_std_error() {
        fn takes_err<E: std::error::Error>(_: E) {}
        takes_err(OpError::IndexOutOfBounds {
            axis: Axis::Rows,
            index: 1,
            bound: 1,
        });
    }
}
