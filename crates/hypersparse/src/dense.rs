//! Full (dense) storage — the `nnz ≈ N²` regime of Fig. 4.
//!
//! Dense storage is semiring-relative: an "absent" cell holds the
//! semiring zero, so a min-plus dense matrix is full of `+∞`, not `0.0`.
//! The struct therefore carries its fill value explicitly.

use semiring::traits::{Semiring, Value};

use crate::dcsr::Dcsr;
use crate::Ix;

/// Row-major dense matrix with an explicit "zero" fill value.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMat<T> {
    nrows: Ix,
    ncols: Ix,
    zero: T,
    data: Vec<T>, // nrows * ncols, row-major
}

impl<T: Value> DenseMat<T> {
    /// A matrix filled with `zero`.
    pub fn filled(nrows: Ix, ncols: Ix, zero: T) -> Self {
        let cells = usize::try_from(nrows)
            .ok()
            .and_then(|r| usize::try_from(ncols).ok().and_then(|c| r.checked_mul(c)))
            .expect("dense dimensions overflow");
        DenseMat {
            nrows,
            ncols,
            zero: zero.clone(),
            data: vec![zero; cells],
        }
    }

    /// Materialize a sparse matrix densely, filling gaps with the
    /// semiring zero.
    pub fn from_dcsr<S: Semiring<Value = T>>(m: &Dcsr<T>, s: S) -> Self {
        let mut d = DenseMat::filled(m.nrows(), m.ncols(), s.zero());
        for (r, c, v) in m.iter() {
            d.set(r, c, v.clone());
        }
        d
    }

    /// Compress to hypersparse, dropping cells equal to the semiring zero.
    pub fn to_dcsr<S: Semiring<Value = T>>(&self, s: S) -> Dcsr<T> {
        let mut rows = Vec::new();
        let mut rowptr = vec![0usize];
        let mut colidx = Vec::new();
        let mut vals = Vec::new();
        for r in 0..self.nrows {
            let start = colidx.len();
            for c in 0..self.ncols {
                let v = self.get(r, c);
                if !s.is_zero(v) {
                    colidx.push(c);
                    vals.push(v.clone());
                }
            }
            if colidx.len() > start {
                rows.push(r);
                rowptr.push(colidx.len());
            }
        }
        Dcsr::from_parts(self.nrows, self.ncols, rows, rowptr, colidx, vals)
    }

    /// Compress to hypersparse using the stored fill value as "zero"
    /// (no semiring needed — the fill was fixed at construction).
    pub fn to_dcsr_by_fill(&self) -> Dcsr<T> {
        let mut rows = Vec::new();
        let mut rowptr = vec![0usize];
        let mut colidx = Vec::new();
        let mut vals = Vec::new();
        for r in 0..self.nrows {
            let start = colidx.len();
            for c in 0..self.ncols {
                let v = self.get(r, c);
                if *v != self.zero {
                    colidx.push(c);
                    vals.push(v.clone());
                }
            }
            if colidx.len() > start {
                rows.push(r);
                rowptr.push(colidx.len());
            }
        }
        Dcsr::from_parts(self.nrows, self.ncols, rows, rowptr, colidx, vals)
    }

    /// Row dimension.
    pub fn nrows(&self) -> Ix {
        self.nrows
    }

    /// Column dimension.
    pub fn ncols(&self) -> Ix {
        self.ncols
    }

    /// The fill ("zero") value.
    pub fn zero_value(&self) -> &T {
        &self.zero
    }

    /// Cell reference (every cell exists).
    pub fn get(&self, row: Ix, col: Ix) -> &T {
        &self.data[self.offset(row, col)]
    }

    /// Overwrite a cell.
    pub fn set(&mut self, row: Ix, col: Ix, v: T) {
        let o = self.offset(row, col);
        self.data[o] = v;
    }

    /// One full row as a slice.
    pub fn row(&self, row: Ix) -> &[T] {
        let o = self.offset(row, 0);
        &self.data[o..o + self.ncols as usize]
    }

    /// Count of cells differing from the fill value.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|v| **v != self.zero).count()
    }

    /// Heap bytes — `O(nrows × ncols)` regardless of occupancy.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    fn offset(&self, row: Ix, col: Ix) -> usize {
        assert!(row < self.nrows && col < self.ncols, "index out of bounds");
        row as usize * self.ncols as usize + col as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use semiring::{MinPlus, PlusTimes};

    #[test]
    fn round_trip_through_dense() {
        let mut c = Coo::new(4, 4);
        c.extend([(0, 1, 2.0), (3, 3, 5.0)]);
        let sp = c.build_dcsr(PlusTimes::<f64>::new());
        let d = DenseMat::from_dcsr(&sp, PlusTimes::<f64>::new());
        assert_eq!(*d.get(0, 1), 2.0);
        assert_eq!(*d.get(0, 0), 0.0);
        assert_eq!(d.nnz(), 2);
        assert_eq!(d.to_dcsr(PlusTimes::<f64>::new()), sp);
    }

    #[test]
    fn tropical_fill_is_infinity() {
        let sp = Dcsr::<f64>::empty(3, 3);
        let d = DenseMat::from_dcsr(&sp, MinPlus::<f64>::new());
        assert_eq!(*d.get(1, 1), f64::INFINITY);
        assert_eq!(d.nnz(), 0);
        assert_eq!(d.to_dcsr(MinPlus::<f64>::new()).nnz(), 0);
    }

    #[test]
    fn bytes_scale_with_area() {
        let a = DenseMat::filled(10, 10, 0.0f64);
        let b = DenseMat::filled(100, 100, 0.0f64);
        assert_eq!(b.bytes(), a.bytes() * 100);
    }

    #[test]
    fn row_slice() {
        let mut d = DenseMat::filled(2, 3, 0i64);
        d.set(1, 2, 9);
        assert_eq!(d.row(1), &[0, 0, 9]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_panics() {
        let d = DenseMat::filled(2, 2, 0i64);
        let _ = d.get(2, 0);
    }
}
