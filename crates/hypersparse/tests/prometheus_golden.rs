//! Golden-file coverage of the Prometheus text exposition, plus
//! algebraic properties of the latency histograms backing it.
//!
//! The exposition must be byte-stable for fixed inputs: dashboards and
//! scrape configs key on exact series names and label spellings, so any
//! drift is a breaking change that this test makes loud.

use std::time::Duration;

use hypersparse::{
    Histogram, HistogramSnapshot, Kernel, MetricsRegistry, TraceMode, TraceRegistry,
};
use proptest::prelude::*;

/// Build a registry with a fixed, hand-computable history: two 5 µs mxm
/// calls and one 100 ns ewise_add.
fn fixed_registry() -> MetricsRegistry {
    let reg = MetricsRegistry::default();
    reg.record(Kernel::Mxm, Duration::from_micros(5), 10, 4, 30, 200);
    reg.record(Kernel::Mxm, Duration::from_micros(5), 12, 6, 34, 240);
    reg.record(Kernel::EwiseAdd, Duration::from_nanos(100), 7, 7, 3, 56);
    reg.record_format_switch();
    reg
}

#[test]
fn metrics_exposition_is_byte_stable() {
    let mut snap = fixed_registry().snapshot();
    // Workspace counters are recorded by the arena internally; the
    // snapshot fields are public, so pin them for the golden.
    snap.workspace_hits = 2;
    snap.workspace_misses = 1;
    // 5 µs = 5000 ns lands in bucket [4096, 8192) → le = 8192 ns;
    // 100 ns lands in [64, 128) → le = 128 ns. Cumulative counts and
    // sums follow directly.
    let expected = "\
# HELP hypersparse_kernel_calls_total Completed kernel invocations.
# TYPE hypersparse_kernel_calls_total counter
hypersparse_kernel_calls_total{kernel=\"mxm\"} 2
hypersparse_kernel_calls_total{kernel=\"ewise_add\"} 1
# HELP hypersparse_kernel_nnz_in_total Stored entries across all kernel inputs.
# TYPE hypersparse_kernel_nnz_in_total counter
hypersparse_kernel_nnz_in_total{kernel=\"mxm\"} 22
hypersparse_kernel_nnz_in_total{kernel=\"ewise_add\"} 7
# HELP hypersparse_kernel_nnz_out_total Stored entries across all kernel outputs.
# TYPE hypersparse_kernel_nnz_out_total counter
hypersparse_kernel_nnz_out_total{kernel=\"mxm\"} 10
hypersparse_kernel_nnz_out_total{kernel=\"ewise_add\"} 7
# HELP hypersparse_kernel_flops_total Semiring operator applications.
# TYPE hypersparse_kernel_flops_total counter
hypersparse_kernel_flops_total{kernel=\"mxm\"} 64
hypersparse_kernel_flops_total{kernel=\"ewise_add\"} 3
# HELP hypersparse_kernel_bytes_touched_total Heap bytes of kernel operands and results.
# TYPE hypersparse_kernel_bytes_touched_total counter
hypersparse_kernel_bytes_touched_total{kernel=\"mxm\"} 440
hypersparse_kernel_bytes_touched_total{kernel=\"ewise_add\"} 56
# HELP hypersparse_kernel_latency_seconds Per-invocation kernel latency.
# TYPE hypersparse_kernel_latency_seconds histogram
hypersparse_kernel_latency_seconds_bucket{kernel=\"mxm\",le=\"0.000008192\"} 2
hypersparse_kernel_latency_seconds_bucket{kernel=\"mxm\",le=\"+Inf\"} 2
hypersparse_kernel_latency_seconds_sum{kernel=\"mxm\"} 0.00001
hypersparse_kernel_latency_seconds_count{kernel=\"mxm\"} 2
hypersparse_kernel_latency_seconds_bucket{kernel=\"ewise_add\",le=\"0.000000128\"} 1
hypersparse_kernel_latency_seconds_bucket{kernel=\"ewise_add\",le=\"+Inf\"} 1
hypersparse_kernel_latency_seconds_sum{kernel=\"ewise_add\"} 0.0000001
hypersparse_kernel_latency_seconds_count{kernel=\"ewise_add\"} 1
# HELP hypersparse_format_switches_total Automatic storage-format changes.
# TYPE hypersparse_format_switches_total counter
hypersparse_format_switches_total 1
# HELP hypersparse_workspace_hits_total Workspace acquisitions served from the pooled arena.
# TYPE hypersparse_workspace_hits_total counter
hypersparse_workspace_hits_total 2
# HELP hypersparse_workspace_misses_total Workspace acquisitions that had to allocate.
# TYPE hypersparse_workspace_misses_total counter
hypersparse_workspace_misses_total 1
# HELP hypersparse_mask_probes_total Complement-mask lookups inside fused kernels.
# TYPE hypersparse_mask_probes_total counter
hypersparse_mask_probes_total 0
# HELP hypersparse_mask_hits_total Mask lookups that skipped work.
# TYPE hypersparse_mask_hits_total counter
hypersparse_mask_hits_total 0
# HELP hypersparse_mxv_direction_calls_total Matrix-vector kernel invocations by chosen direction.
# TYPE hypersparse_mxv_direction_calls_total counter
hypersparse_mxv_direction_calls_total{direction=\"push\"} 0
hypersparse_mxv_direction_calls_total{direction=\"pull\"} 0
# HELP hypersparse_workspace_hit_rate Fraction of workspace acquisitions served from the pool.
# TYPE hypersparse_workspace_hit_rate gauge
hypersparse_workspace_hit_rate 0.6666666666666666
# HELP hypersparse_mask_hit_rate Fraction of mask probes that skipped work.
# TYPE hypersparse_mask_hit_rate gauge
hypersparse_mask_hit_rate 0
";
    assert_eq!(snap.render_prometheus(), expected);
}

#[test]
fn exposition_scrapes_cleanly() {
    // Structural lint over a *busier* registry than the golden: every
    // non-comment line is `name{labels} value`, every series name that
    // appears was declared by a # TYPE header first.
    let reg = fixed_registry();
    reg.record(Kernel::Vxm, Duration::from_millis(2), 50, 40, 90, 720);
    reg.record_mv_direction(hypersparse::Direction::Push, 10, 4);
    let text = reg.snapshot().render_prometheus();
    let mut declared: Vec<String> = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            declared.push(rest.split(' ').next().unwrap().to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let name_end = line.find(['{', ' ']).expect("malformed line");
        let base = line[..name_end]
            .trim_end_matches("_bucket")
            .trim_end_matches("_sum")
            .trim_end_matches("_count");
        assert!(
            declared.iter().any(|d| d == base || d == &line[..name_end]),
            "undeclared series {line:?}"
        );
        let value = line.rsplit(' ').next().unwrap();
        assert!(
            value == "+Inf" || value.parse::<f64>().is_ok(),
            "unparsable value in {line:?}"
        );
    }
}

#[test]
fn slow_span_capture_feeds_the_report() {
    let t = TraceRegistry::default();
    t.set_mode(TraceMode::SlowOnly);
    t.set_slow_threshold(Some(Duration::ZERO)); // everything is "slow"
    {
        let _s = t.span("mxm", || "64×64, 4096 nnz".into());
    }
    let slow = t.slow_spans();
    assert_eq!(slow.len(), 1);
    assert_eq!(slow[0].name, "mxm");
    assert!(t.report().contains("[slow]"));
}

proptest! {
    /// Histogram merge is associative and commutative: merging shard
    /// registries in any grouping/order yields the same totals.
    #[test]
    fn histogram_merge_is_associative_and_commutative(
        xs in proptest::collection::vec(1u64..1 << 40, 0..40),
        ys in proptest::collection::vec(1u64..1 << 40, 0..40),
        zs in proptest::collection::vec(1u64..1 << 40, 0..40),
    ) {
        let snap = |ns: &[u64]| {
            let h = Histogram::default();
            for &n in ns {
                h.record_ns(n);
            }
            h.snapshot()
        };
        let (a, b, c) = (snap(&xs), snap(&ys), snap(&zs));

        let merge = |l: &HistogramSnapshot, r: &HistogramSnapshot| {
            let mut out = *l;
            out.merge(r);
            out
        };
        let left = merge(&merge(&a, &b), &c);
        let right = merge(&a, &merge(&b, &c));
        prop_assert_eq!(left, right);
        prop_assert_eq!(merge(&a, &b), merge(&b, &a));
        prop_assert_eq!(
            left.count(),
            (xs.len() + ys.len() + zs.len()) as u64
        );
        prop_assert_eq!(
            left.sum_ns,
            xs.iter().chain(&ys).chain(&zs).sum::<u64>()
        );
    }

    /// Quantiles are monotone in q and bounded by the recorded range's
    /// bucket ceiling.
    #[test]
    fn quantiles_are_monotone(
        // Stay below the unbounded last bucket, whose upper edge is
        // u64::MAX by contract.
        xs in proptest::collection::vec(1u64..1 << 38, 1..60),
    ) {
        let h = Histogram::default();
        for &n in &xs {
            h.record_ns(n);
        }
        let s = h.snapshot();
        let q25 = s.quantile(0.25);
        let q50 = s.quantile(0.50);
        let q99 = s.quantile(0.99);
        prop_assert!(q25 <= q50 && q50 <= q99);
        let max = *xs.iter().max().unwrap();
        // p99 upper edge is at most one bucket above the true max.
        prop_assert!(q99 <= max.next_power_of_two().max(2) * 2);
    }
}
