//! Property-based kernel verification against naive oracles, plus
//! format-independence of every operation.

use hypersparse::{Coo, Dcsr, Format, Ix, Matrix};
use proptest::prelude::*;
use semiring::{MinPlus, PlusTimes, Semiring};

const N: Ix = 16;

fn triplets() -> impl Strategy<Value = Vec<(Ix, Ix, i64)>> {
    proptest::collection::vec((0..N, 0..N, 1i64..10), 0..60)
}

fn build<S: Semiring<Value = i64>>(t: &[(Ix, Ix, i64)], s: S) -> Dcsr<i64> {
    let mut c = Coo::new(N, N);
    c.extend(t.iter().copied());
    c.build_dcsr(s)
}

/// Naive dense-map oracle for ⊕.⊗.
fn mxm_oracle<S: Semiring<Value = i64>>(a: &Dcsr<i64>, b: &Dcsr<i64>, s: S) -> Vec<(Ix, Ix, i64)> {
    let mut acc: std::collections::BTreeMap<(Ix, Ix), i64> = Default::default();
    for (i, k, &av) in a.iter() {
        for (k2, j, &bv) in b.iter() {
            if k == k2 {
                let p = s.mul(av, bv);
                acc.entry((i, j))
                    .and_modify(|x| *x = s.add(*x, p))
                    .or_insert(p);
            }
        }
    }
    acc.into_iter()
        .filter(|(_, v)| !s.is_zero(v))
        .map(|((i, j), v)| (i, j, v))
        .collect()
}

proptest! {
    #[test]
    fn mxm_matches_oracle_plus_times(ta in triplets(), tb in triplets()) {
        let s = PlusTimes::<i64>::new();
        let (a, b) = (build(&ta, s), build(&tb, s));
        let got: Vec<_> = hypersparse::ops::mxm(&a, &b, s)
            .iter()
            .map(|(i, j, &v)| (i, j, v))
            .collect();
        prop_assert_eq!(got, mxm_oracle(&a, &b, s));
    }

    #[test]
    fn mxm_matches_oracle_min_plus(ta in triplets(), tb in triplets()) {
        let s = MinPlus::<i64>::new();
        let (a, b) = (build(&ta, s), build(&tb, s));
        let got: Vec<_> = hypersparse::ops::mxm(&a, &b, s)
            .iter()
            .map(|(i, j, &v)| (i, j, v))
            .collect();
        prop_assert_eq!(got, mxm_oracle(&a, &b, s));
    }

    #[test]
    fn ewise_ops_match_map_oracles(ta in triplets(), tb in triplets()) {
        let s = PlusTimes::<i64>::new();
        let (a, b) = (build(&ta, s), build(&tb, s));
        let ma: std::collections::BTreeMap<(Ix, Ix), i64> =
            a.iter().map(|(r, c, &v)| ((r, c), v)).collect();
        let mb: std::collections::BTreeMap<(Ix, Ix), i64> =
            b.iter().map(|(r, c, &v)| ((r, c), v)).collect();

        // union oracle
        let mut u = ma.clone();
        for (&k, &v) in &mb {
            u.entry(k).and_modify(|x| *x += v).or_insert(v);
        }
        u.retain(|_, v| *v != 0);
        let got: Vec<_> = hypersparse::ops::ewise_add(&a, &b, s)
            .iter()
            .map(|(r, c, &v)| ((r, c), v))
            .collect();
        prop_assert_eq!(got, u.into_iter().collect::<Vec<_>>());

        // intersection oracle
        let mut i: Vec<((Ix, Ix), i64)> = ma
            .iter()
            .filter_map(|(&k, &v)| mb.get(&k).map(|w| (k, v * w)))
            .filter(|(_, v)| *v != 0)
            .collect();
        i.sort();
        let got: Vec<_> = hypersparse::ops::ewise_mul(&a, &b, s)
            .iter()
            .map(|(r, c, &v)| ((r, c), v))
            .collect();
        prop_assert_eq!(got, i);
    }

    #[test]
    fn transpose_involution_and_entry_map(t in triplets()) {
        let s = PlusTimes::<i64>::new();
        let a = build(&t, s);
        let at = hypersparse::ops::transpose(&a);
        prop_assert_eq!(hypersparse::ops::transpose(&at), a.clone());
        for (r, c, v) in a.iter() {
            prop_assert_eq!(at.get(c, r), Some(v));
        }
    }

    #[test]
    fn every_format_preserves_every_op(ta in triplets(), tb in triplets()) {
        let s = PlusTimes::<i64>::new();
        let a0 = Matrix::from_dcsr(build(&ta, s), s);
        let b0 = Matrix::from_dcsr(build(&tb, s), s);
        let want = a0.mxm(&b0, s);
        let want_add = a0.ewise_add(&b0, s);
        for fa in [Format::Dense, Format::Bitmap, Format::Csr, Format::Dcsr] {
            let a = a0.clone().with_format(fa, s);
            prop_assert_eq!(a.mxm(&b0, s), want.clone());
            prop_assert_eq!(a.ewise_add(&b0, s), want_add.clone());
            prop_assert_eq!(a.nnz(), a0.nnz());
        }
    }

    #[test]
    fn builder_merge_equals_map_fold(t in triplets()) {
        let s = PlusTimes::<i64>::new();
        let a = build(&t, s);
        let mut oracle: std::collections::BTreeMap<(Ix, Ix), i64> = Default::default();
        for &(r, c, v) in &t {
            *oracle.entry((r, c)).or_insert(0) += v;
        }
        oracle.retain(|_, v| *v != 0);
        let got: Vec<_> = a.iter().map(|(r, c, &v)| ((r, c), v)).collect();
        prop_assert_eq!(got, oracle.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn concat_extract_inverse(ta in triplets(), tb in triplets()) {
        let s = PlusTimes::<i64>::new();
        let (a, b) = (build(&ta, s), build(&tb, s));
        let tall = hypersparse::ops::concat_rows(&a, &b);
        let rows_a: Vec<Ix> = (0..N).collect();
        let rows_b: Vec<Ix> = (N..2 * N).collect();
        let cols: Vec<Ix> = (0..N).collect();
        prop_assert_eq!(hypersparse::ops::extract(&tall, &rows_a, &cols), a);
        prop_assert_eq!(hypersparse::ops::extract(&tall, &rows_b, &cols), b);
    }

    #[test]
    fn masked_mxm_is_filtered_full_mxm(ta in triplets(), tb in triplets(), tm in triplets()) {
        let s = PlusTimes::<i64>::new();
        let (a, b, mask) = (build(&ta, s), build(&tb, s), build(&tm, s));
        let full = hypersparse::ops::mxm(&a, &b, s);
        let masked = hypersparse::ops::mxm_masked(&a, &b, &mask, false, s);
        let expect = hypersparse::ops::select(&full, |r, c, _| mask.get(r, c).is_some());
        prop_assert_eq!(masked, expect);
        let comp = hypersparse::ops::mxm_masked(&a, &b, &mask, true, s);
        let expect_c = hypersparse::ops::select(&full, |r, c, _| mask.get(r, c).is_none());
        prop_assert_eq!(comp, expect_c);
    }

    #[test]
    fn parallel_masked_mxm_equals_sequential_and_filter(
        ta in triplets(), tb in triplets(), tm in triplets(),
    ) {
        // Tile each 16×16 draw down a block diagonal and add a 640-row
        // strip, so every case clears the ≥512 non-empty-row bar where
        // the masked SpGEMM switches to its row-sharded parallel path.
        const TILE: Ix = 40;
        const BIG: Ix = 16 * TILE;
        fn tile(t: &[(Ix, Ix, i64)]) -> Vec<(Ix, Ix, i64)> {
            let mut out: Vec<(Ix, Ix, i64)> = (0..BIG).map(|i| (i, i % 16, 1i64)).collect();
            for k in 0..TILE {
                out.extend(t.iter().map(|&(r, c, v)| (r + 16 * k, c + 16 * k, v)));
            }
            out
        }
        fn build_big<T: Copy + semiring::traits::Value, S: Semiring<Value = T>>(
            t: &[(Ix, Ix, i64)], f: impl Fn(i64) -> T, s: S,
        ) -> Dcsr<T> {
            let mut c = Coo::new(BIG, BIG);
            c.extend(t.iter().map(|&(r, col, v)| (r, col, f(v))));
            c.build_dcsr(s)
        }
        let (ta, tb, tm) = (tile(&ta), tile(&tb), tile(&tm));

        macro_rules! check {
            ($s:expr, $f:expr) => {{
                let s = $s;
                let (a, b, mask) = (
                    build_big(&ta, $f, s),
                    build_big(&tb, $f, s),
                    build_big(&tm, $f, s),
                );
                let full = hypersparse::ops::mxm(&a, &b, s);
                for complement in [false, true] {
                    let seq = hypersparse::ops::mxm_masked_ctx(
                        &hypersparse::OpCtx::new().with_threads(1), &a, &b, &mask, complement, s);
                    let expect = hypersparse::ops::select(
                        &full, |r, c, _| mask.get(r, c).is_some() != complement);
                    prop_assert_eq!(&seq, &expect);
                    for threads in [2usize, 4, 8] {
                        let par = hypersparse::ops::mxm_masked_ctx(
                            &hypersparse::OpCtx::new().with_threads(threads),
                            &a, &b, &mask, complement, s);
                        prop_assert_eq!(&par, &seq);
                    }
                }
            }};
        }
        check!(PlusTimes::<i64>::new(), |v| v);
        check!(MinPlus::<i64>::new(), |v| v);
        check!(semiring::LorLand, |_| true);
    }

    #[test]
    fn fused_masked_vxm_is_unfused_then_without(ta in triplets(), tv in triplets(), tm in triplets()) {
        let s = PlusTimes::<i64>::new();
        let a = build(&ta, s);
        let v = hypersparse::SparseVec::from_entries(
            N, tv.iter().map(|&(i, _, x)| (i, x)).collect(), s);
        let mask_vec = hypersparse::SparseVec::from_entries(
            N, tm.iter().map(|&(i, _, _)| (i, 1i64)).collect(), s);
        let mask: Vec<Ix> = mask_vec.indices().to_vec();
        let fused = hypersparse::ops::vxm_masked_ctx(&hypersparse::OpCtx::new(), &v, &a, &mask, s);
        let unfused = hypersparse::ops::vxm(&v, &a, s).without(&mask_vec);
        prop_assert_eq!(fused, unfused);
    }

    #[test]
    fn vxm_push_equals_pull(ta in triplets(), tv in triplets()) {
        let s = PlusTimes::<i64>::new();
        let a = build(&ta, s);
        let at = hypersparse::ops::transpose(&a);
        let v = hypersparse::SparseVec::from_entries(
            N, tv.iter().map(|&(i, _, x)| (i, x)).collect(), s);
        let ctx = hypersparse::OpCtx::new();
        prop_assert_eq!(
            hypersparse::ops::vxm_push_ctx(&ctx, &v, &a, s),
            hypersparse::ops::vxm_pull_ctx(&ctx, &v, &at, s)
        );
    }

    #[test]
    fn parallel_vxm_equals_sequential(ta in triplets(), tv in triplets()) {
        // i64 ⊕ is exact, so any segmentation/sharding must agree with
        // the single-thread run bit for bit.
        let s = MinPlus::<i64>::new();
        let a = build(&ta, s);
        let v = hypersparse::SparseVec::from_entries(
            N, tv.iter().map(|&(i, _, x)| (i, x)).collect(), s);
        let seq = hypersparse::OpCtx::new().with_threads(1);
        let base_vxm = hypersparse::ops::vxm_ctx(&seq, &v, &a, s);
        let base_mxv = hypersparse::ops::mxv_ctx(&seq, &a, &v, s);
        for threads in [2usize, 4, 8] {
            let ctx = hypersparse::OpCtx::new().with_threads(threads);
            prop_assert_eq!(hypersparse::ops::vxm_ctx(&ctx, &v, &a, s), base_vxm.clone());
            prop_assert_eq!(hypersparse::ops::mxv_ctx(&ctx, &a, &v, s), base_mxv.clone());
        }
    }
}

fn f64_triplets() -> impl Strategy<Value = Vec<(Ix, Ix, f64)>> {
    proptest::collection::vec((0..N, 0..N, -5i64..10), 0..60)
        .prop_map(|v| v.into_iter().map(|(r, c, x)| (r, c, x as f64)).collect())
}

fn build_f64(t: &[(Ix, Ix, f64)]) -> hypersparse::Dcsr<f64> {
    let mut c = Coo::new(N, N);
    c.extend(t.iter().copied());
    c.build_dcsr(PlusTimes::<f64>::new())
}

proptest! {
    /// The fused SpGEMM epilogue is ≡ mxm-then-apply_prune under the
    /// DNN two-semiring layer: multiply in PlusTimes (S₁), bias+ReLU in
    /// MaxPlus (S₂ — `max(x + b, 0)`), prune with the S₁ zero. Positive
    /// biases included: `op(0) = b > 0` must never appear at positions
    /// the product leaves absent.
    #[test]
    fn fused_prune_equals_two_pass_plus_times(
        ta in f64_triplets(), tb in f64_triplets(), bias in -4i64..5,
    ) {
        use semiring::{FnOp, MaxPlus};
        let s1 = PlusTimes::<f64>::new();
        let s2 = MaxPlus::<f64>::new();
        let b = bias as f64;
        let (a, w) = (build_f64(&ta), build_f64(&tb));
        let op = FnOp(move |x: f64| s2.add(s2.mul(x, b), 0.0));
        for threads in [1usize, 4] {
            let ctx = hypersparse::OpCtx::new().with_threads(threads);
            let fused = hypersparse::ops::mxm_apply_prune_ctx(&ctx, &a, &w, s1, op, s1);
            let two_pass = hypersparse::ops::apply_prune_ctx(
                &ctx, &hypersparse::ops::mxm_ctx(&ctx, &a, &w, s1), op, s1);
            prop_assert_eq!(fused, two_pass, "threads={}", threads);
        }
    }

    /// Same fusion law with the multiply itself running in MaxPlus —
    /// the accumulator s-zero (−∞) and the drop zero (0.0) genuinely
    /// differ, so any epilogue-ordering mistake shows up here.
    #[test]
    fn fused_prune_equals_two_pass_max_plus(
        ta in f64_triplets(), tb in f64_triplets(), bias in -4i64..1,
    ) {
        use semiring::{FnOp, MaxPlus};
        let s2 = MaxPlus::<f64>::new();
        let drop = PlusTimes::<f64>::new();
        let b = bias as f64;
        let (a, w) = (build_f64(&ta), build_f64(&tb));
        let op = FnOp(move |x: f64| s2.add(s2.mul(x, b), 0.0));
        let ctx = hypersparse::OpCtx::new();
        let fused = hypersparse::ops::mxm_apply_prune_ctx(&ctx, &a, &w, s2, op, drop);
        let two_pass = hypersparse::ops::apply_prune_ctx(
            &ctx, &hypersparse::ops::mxm_ctx(&ctx, &a, &w, s2), op, drop);
        prop_assert_eq!(fused, two_pass);
    }
}
