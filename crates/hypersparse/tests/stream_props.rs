//! Property tests for the streaming hierarchy: interleaving inserts with
//! snapshots (which force cascades at arbitrary points) must never change
//! the final state versus a flat one-shot COO build.

use hypersparse::{Coo, Dcsr, Ix, StreamConfig, StreamingMatrix};
use proptest::prelude::*;
use semiring::{MinPlus, PlusTimes, Semiring};

const N: Ix = 1 << 20;

fn events() -> impl Strategy<Value = Vec<(Ix, Ix, i64)>> {
    proptest::collection::vec((0..200u64, 0..200u64, 1i64..8), 0..400)
}

/// Positions (as prefix lengths) at which to take a mid-stream snapshot.
fn cut_points() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..400usize, 0..6)
}

fn flat<S: Semiring<Value = i64>>(t: &[(Ix, Ix, i64)], s: S) -> Dcsr<i64> {
    let mut c = Coo::new(N, N);
    c.extend(t.iter().copied());
    c.build_dcsr(s)
}

fn run_interleaved<S: Semiring<Value = i64>>(
    t: &[(Ix, Ix, i64)],
    cuts: &[usize],
    config: StreamConfig,
    s: S,
) -> (Dcsr<i64>, Vec<Dcsr<i64>>) {
    let mut m = StreamingMatrix::with_config(N, N, s, config);
    let mut mid = Vec::new();
    for (i, &(r, c, v)) in t.iter().enumerate() {
        if cuts.contains(&i) {
            mid.push(m.snapshot());
        }
        m.insert(r, c, v);
    }
    (m.snapshot(), mid)
}

proptest! {
    #[test]
    fn interleaved_snapshots_match_flat_build(t in events(), cuts in cut_points()) {
        let s = PlusTimes::<i64>::new();
        let reference = flat(&t, s);
        // Tiny buffers/growth force many cascade boundaries.
        for config in [
            StreamConfig::new(),
            StreamConfig::new().with_buffer_cap(4).with_growth(2),
            StreamConfig::new().with_buffer_cap(7).with_growth(3),
        ] {
            let (got, mid) = run_interleaved(&t, &cuts, config, s);
            prop_assert_eq!(&got, &reference);
            // Every mid-stream snapshot equals the flat build of its prefix.
            let mut sorted_cuts: Vec<_> =
                cuts.iter().copied().filter(|&c| c < t.len()).collect();
            sorted_cuts.sort_unstable();
            sorted_cuts.dedup();
            for (snap, &cut) in mid.iter().zip(sorted_cuts.iter()) {
                prop_assert_eq!(snap, &flat(&t[..cut], s));
            }
        }
    }

    #[test]
    fn snapshot_is_idempotent_and_non_mutating(t in events()) {
        let s = MinPlus::<i64>::new();
        let mut m = StreamingMatrix::with_config(
            N, N, s, StreamConfig::new().with_buffer_cap(8).with_growth(2));
        for &(r, c, v) in &t {
            m.insert(r, c, v);
        }
        let a = m.snapshot();
        let b = m.snapshot();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &flat(&t, s));
        prop_assert_eq!(m.inserted(), t.len() as u64);
    }

    #[test]
    fn full_snapshot_is_fold_of_delta_snapshots(
        t in events(),
        delta_cuts in cut_points(),
        snap_cuts in cut_points(),
    ) {
        // Interleave inserts with delta cuts AND plain snapshots at
        // arbitrary points: the ⊕-fold of every delta (plus the live
        // tail) must equal the full fold — `full ≡ fold(⊕, deltas)` —
        // and plain snapshots must never advance the delta cut.
        let s = PlusTimes::<i64>::new();
        for config in [
            StreamConfig::new(),
            StreamConfig::new().with_buffer_cap(4).with_growth(2),
            StreamConfig::new().with_buffer_cap(7).with_growth(3),
        ] {
            let mut m = StreamingMatrix::with_config(N, N, s, config);
            let mut folded = Dcsr::<i64>::empty(N, N);
            for (i, &(r, c, v)) in t.iter().enumerate() {
                if delta_cuts.contains(&i) {
                    let delta = m.delta_snapshot();
                    folded = hypersparse::ops::ewise_add(&folded, &delta, s);
                    // Invariant at every cut: deltas so far ≡ full fold.
                    prop_assert_eq!(&folded, &m.snapshot());
                }
                if snap_cuts.contains(&i) {
                    // A plain snapshot observes without cutting.
                    let _ = m.snapshot();
                }
                m.insert(r, c, v);
            }
            let tail = m.delta_snapshot();
            folded = hypersparse::ops::ewise_add(&folded, &tail, s);
            prop_assert_eq!(&folded, &flat(&t, s));
            prop_assert_eq!(&folded, &m.snapshot());
            // After the final cut the next delta is empty.
            prop_assert_eq!(m.delta_snapshot().nnz(), 0);
        }
    }

    #[test]
    fn flush_then_resume_matches_flat_build(t in events(), split in 0..400usize) {
        // An explicit flush mid-stream (as checkpointing does) must be
        // invisible to the final fold.
        let s = PlusTimes::<i64>::new();
        let split = split.min(t.len());
        let mut m = StreamingMatrix::with_config(
            N, N, s, StreamConfig::new().with_buffer_cap(16).with_growth(2));
        for &(r, c, v) in &t[..split] {
            m.insert(r, c, v);
        }
        m.flush();
        prop_assert_eq!(m.buffered(), 0);
        for &(r, c, v) in &t[split..] {
            m.insert(r, c, v);
        }
        prop_assert_eq!(m.snapshot(), flat(&t, s));
    }
}
