//! Hot-path equivalence properties (DESIGN.md §13).
//!
//! The kernel-speed layer adds three things that must never change an
//! answer: narrow (`u32`) index storage, monomorphic semiring fast
//! paths, and merge-path (nnz-weighted) shard splits. Each is proven
//! here against its generic/wide/sequential baseline — bit-identical,
//! not approximately equal, because the determinism contract promises
//! the same bytes for the same inputs at every thread count and every
//! storage width.

use hypersparse::gen::{rmat_dcsr, RmatParams};
use hypersparse::{ops, Coo, Dcsr, Ix, OpCtx, SparseVec};
use proptest::prelude::*;
use semiring::{LorLand, PlusTimes};

const N: Ix = 24;

fn triplets() -> impl Strategy<Value = Vec<(Ix, Ix, i64)>> {
    proptest::collection::vec((0..N, 0..N, -6i64..10), 0..90)
}

/// Integer-valued f64 matrix: sums stay exact, so any mismatch is a
/// logic bug, never floating-point noise.
fn build_f64(t: &[(Ix, Ix, i64)]) -> Dcsr<f64> {
    let mut c = Coo::new(N, N);
    c.extend(t.iter().map(|&(r, col, v)| (r, col, v as f64)));
    c.build_dcsr(PlusTimes::<f64>::new())
}

/// Boolean matrix with *stored* `false` values (every third entry is
/// flipped after the build), so the presence/truth distinction in the
/// word-merge path is exercised, not just all-true patterns.
fn build_bool(t: &[(Ix, Ix, i64)]) -> Dcsr<bool> {
    let mut c = Coo::new(N, N);
    c.extend(t.iter().map(|&(r, col, _)| (r, col, true)));
    let (nr, nc, rows, rowptr, colidx, mut vals) = c.build_dcsr(LorLand).into_parts();
    for v in vals.iter_mut().step_by(3) {
        *v = false;
    }
    Dcsr::from_parts(nr, nc, rows, rowptr, colidx, vals)
}

fn build_vec(t: &[(Ix, Ix, i64)]) -> SparseVec<f64> {
    let s = PlusTimes::<f64>::new();
    SparseVec::from_entries(N, t.iter().map(|&(i, _, v)| (i, v as f64)).collect(), s)
}

/// Round-trip an op through u32 storage and compare against the wide
/// run: narrow in, op, widen out.
macro_rules! assert_width_invariant {
    ($wide:expr, $narrow:expr) => {{
        let wide = $wide;
        let narrow = $narrow;
        prop_assert_eq!(
            wide,
            narrow.to_index_width().expect("widening always fits"),
            "u32 storage changed the answer"
        );
    }};
}

proptest! {
    /// Tentpole (1): `u32` column ids are a representation choice only —
    /// mxm, ewise union/intersection, and vxm/mxv produce bit-identical
    /// results at every index width.
    #[test]
    fn narrow_index_width_is_invisible(ta in triplets(), tb in triplets(), tv in triplets()) {
        let s = PlusTimes::<f64>::new();
        let (a, b) = (build_f64(&ta), build_f64(&tb));
        let (a32, b32) = (
            a.to_index_width::<u32>().unwrap(),
            b.to_index_width::<u32>().unwrap(),
        );
        assert_width_invariant!(ops::mxm(&a, &b, s), ops::mxm(&a32, &b32, s));
        assert_width_invariant!(ops::ewise_add(&a, &b, s), ops::ewise_add(&a32, &b32, s));
        assert_width_invariant!(ops::ewise_mul(&a, &b, s), ops::ewise_mul(&a32, &b32, s));

        let v = build_vec(&tv);
        let v32 = v.to_index_width::<u32>().unwrap();
        prop_assert_eq!(
            ops::vxm(&v, &a, s),
            ops::vxm(&v32, &a32, s).to_index_width().unwrap()
        );
        prop_assert_eq!(
            ops::mxv(&a, &v, s),
            ops::mxv(&a32, &v32, s).to_index_width().unwrap()
        );
    }

    /// Tentpole (2): the monomorphic PlusTimes/f64 and LorLand/bool
    /// kernels equal the generic semiring path — toggled per-context via
    /// `set_fast_paths(false)`, which forces every dispatch back to the
    /// generic loop.
    #[test]
    fn monomorphic_fast_paths_equal_generic(ta in triplets(), tb in triplets(), tv in triplets()) {
        let fast = OpCtx::new();
        let slow = OpCtx::new();
        slow.set_fast_paths(false);

        let s = PlusTimes::<f64>::new();
        let (a, b) = (build_f64(&ta), build_f64(&tb));
        prop_assert_eq!(
            ops::mxm_ctx(&fast, &a, &b, s),
            ops::mxm_ctx(&slow, &a, &b, s)
        );
        let v = build_vec(&tv);
        prop_assert_eq!(
            ops::vxm_ctx(&fast, &v, &a, s),
            ops::vxm_ctx(&slow, &v, &a, s)
        );

        let (ab, bb) = (build_bool(&ta), build_bool(&tb));
        prop_assert_eq!(
            ops::mxm_ctx(&fast, &ab, &bb, LorLand),
            ops::mxm_ctx(&slow, &ab, &bb, LorLand)
        );
        prop_assert_eq!(
            ops::ewise_add_ctx(&fast, &ab, &bb, LorLand),
            ops::ewise_add_ctx(&slow, &ab, &bb, LorLand)
        );
        prop_assert_eq!(
            ops::ewise_mul_ctx(&fast, &ab, &bb, LorLand),
            ops::ewise_mul_ctx(&slow, &ab, &bb, LorLand)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tentpole (4): merge-path weighted shard splits on a skewed RMAT
    /// graph are bit-identical across 1/2/4/8 threads AND identical to
    /// the fixed-span sharding they replaced (`set_shard_balancing(false)`).
    /// RMAT edge weights are arbitrary f64s, so this holds only because
    /// rows never split across shards and shards concatenate in order —
    /// the determinism argument of DESIGN.md §13.
    #[test]
    fn merge_path_sharding_is_thread_and_scheme_invariant(seed in 0u64..1_000) {
        let s = PlusTimes::<f64>::new();
        let p = RmatParams {
            scale: 7,
            edge_factor: 8,
            probs: (0.57, 0.19, 0.19, 0.05),
        };
        let a = rmat_dcsr(p, seed, s);
        let n = a.nrows();
        let v = SparseVec::from_entries(
            n,
            (0..n).step_by(3).map(|i| (i, 1.0 + i as f64)).collect(),
            s,
        );

        let seq = OpCtx::new().with_threads(1);
        let base_mxm = ops::mxm_ctx(&seq, &a, &a, s);
        let base_vxm = ops::vxm_ctx(&seq, &v, &a, s);
        for threads in [2usize, 4, 8] {
            let weighted = OpCtx::new().with_threads(threads);
            prop_assert_eq!(&ops::mxm_ctx(&weighted, &a, &a, s), &base_mxm);
            prop_assert_eq!(&ops::vxm_ctx(&weighted, &v, &a, s), &base_vxm);

            let fixed = OpCtx::new().with_threads(threads);
            fixed.set_shard_balancing(false);
            prop_assert_eq!(&ops::mxm_ctx(&fixed, &a, &a, s), &base_mxm);
            prop_assert_eq!(&ops::vxm_ctx(&fixed, &v, &a, s), &base_vxm);
        }
    }
}
