//! Integration tests for the execution-context layer: per-kernel
//! metrics, workspace-arena reuse, thread-cap determinism, and the
//! fallible `try_*` API.

use hypersparse::gen::random_dcsr;
use hypersparse::ops;
use hypersparse::{Axis, Kernel, Matrix, OpCtx, OpError};
use semiring::PlusTimes;

fn workload(seed: u64) -> (hypersparse::Dcsr<f64>, hypersparse::Dcsr<f64>) {
    let s = PlusTimes::<f64>::new();
    let n = 1u64 << 20;
    (
        random_dcsr(n, n, 20_000, seed, s),
        random_dcsr(n, n, 20_000, seed + 1, s),
    )
}

#[test]
fn mxm_through_ctx_increments_counters() {
    let s = PlusTimes::<f64>::new();
    let (a, b) = workload(11);
    let ctx = OpCtx::new();

    let c = ops::mxm_ctx(&ctx, &a, &b, s);
    let snap = ctx.metrics().snapshot();
    let mxm = snap.kernel(Kernel::Mxm);
    assert_eq!(mxm.calls, 1);
    assert_eq!(mxm.nnz_in, (a.nnz() + b.nnz()) as u64);
    assert_eq!(mxm.nnz_out, c.nnz() as u64);
    assert!(mxm.flops > 0, "a 20k-nnz product must multiply something");
    assert!(snap.total_calls() >= 1);

    // The rendered report names the kernel and skips idle ones.
    let report = snap.report();
    assert!(report.contains("mxm"), "{report}");
    assert!(!report.contains("kron"), "{report}");
}

#[test]
fn arena_does_not_grow_across_repeated_same_shape_calls() {
    let s = PlusTimes::<f64>::new();
    let (a, b) = workload(23);
    let ctx = OpCtx::new();

    for _ in 0..100 {
        let _ = ops::mxm_ctx(&ctx, &a, &b, s);
    }
    let snap = ctx.metrics().snapshot();
    assert_eq!(snap.kernel(Kernel::Mxm).calls, 100);
    // Every call after the first leases the same scratch back out of the
    // pool: exactly one buffer is ever allocated, so the arena holds one
    // pooled buffer (not 100) once the loop finishes.
    assert_eq!(snap.workspace_misses, 1, "only the first call allocates");
    assert_eq!(snap.workspace_hits, 99);
    assert_eq!(ctx.pooled_buffers(), 1);
}

#[test]
fn thread_cap_one_and_many_agree_bit_for_bit() {
    let s = PlusTimes::<f64>::new();
    let (a, b) = workload(37);

    let seq_ctx = OpCtx::new().with_threads(1);
    let reference = ops::mxm_ctx(&seq_ctx, &a, &b, s);
    for threads in [2, 4, 8] {
        let par_ctx = OpCtx::new().with_threads(threads);
        assert_eq!(
            ops::mxm_ctx(&par_ctx, &a, &b, s),
            reference,
            "thread cap {threads} changed the result"
        );
    }
}

#[test]
fn matrix_level_ctx_calls_share_one_registry() {
    let s = PlusTimes::<f64>::new();
    let ctx = OpCtx::new();
    let a = Matrix::from_triplets(64, 64, vec![(0, 1, 1.0), (1, 2, 2.0)], s);
    let b = Matrix::from_triplets(64, 64, vec![(1, 0, 3.0), (2, 1, 4.0)], s);

    let _ = a.mxm_ctx(&ctx, &b, s);
    let _ = a.ewise_add_ctx(&ctx, &b, s);
    let _ = a.transpose_ctx(&ctx, s);

    let snap = ctx.metrics().snapshot();
    assert_eq!(snap.kernel(Kernel::Mxm).calls, 1);
    assert_eq!(snap.kernel(Kernel::EwiseAdd).calls, 1);
    assert_eq!(snap.kernel(Kernel::Transpose).calls, 1);

    ctx.reset_metrics();
    assert_eq!(ctx.metrics().snapshot().total_calls(), 0);
}

#[test]
fn try_mxm_reports_dimension_mismatch() {
    let s = PlusTimes::<f64>::new();
    let a = Matrix::from_triplets(3, 4, vec![(0, 0, 1.0)], s);
    let b = Matrix::from_triplets(5, 3, vec![(0, 0, 1.0)], s);
    match a.try_mxm(&b, s) {
        Err(OpError::DimensionMismatch { op, a, b, rule }) => {
            assert_eq!(op, "mxm");
            assert_eq!(a, (3, 4));
            assert_eq!(b, (5, 3));
            assert_eq!(rule, "inner dimensions differ");
        }
        other => panic!("expected DimensionMismatch, got {other:?}"),
    }
    // And the conforming product still works through the same API.
    let ok = Matrix::from_triplets(4, 2, vec![(0, 0, 2.0)], s);
    assert!(a.try_mxm(&ok, s).is_ok());
}

#[test]
#[should_panic(expected = "inner dimensions differ")]
fn panicking_mxm_keeps_its_message() {
    let s = PlusTimes::<f64>::new();
    let a = Matrix::from_triplets(3, 4, vec![(0, 0, 1.0)], s);
    let b = Matrix::from_triplets(5, 3, vec![(0, 0, 1.0)], s);
    let _ = a.mxm(&b, s);
}

#[test]
fn try_ewise_ops_report_key_space_mismatch() {
    let s = PlusTimes::<f64>::new();
    let a = Matrix::from_triplets(4, 4, vec![(0, 0, 1.0)], s);
    let b = Matrix::from_triplets(4, 5, vec![(0, 0, 1.0)], s);
    for (name, res) in [
        ("ewise_add", a.try_ewise_add(&b, s)),
        ("ewise_mul", a.try_ewise_mul(&b, s)),
    ] {
        match res {
            Err(OpError::DimensionMismatch { op, rule, .. }) => {
                assert_eq!(op, name);
                assert_eq!(rule, "element-wise operands must share a key space");
            }
            other => panic!("{name}: expected DimensionMismatch, got {other:?}"),
        }
    }
}

#[test]
fn try_concat_reports_mismatch_and_overflow() {
    let s = PlusTimes::<f64>::new();
    let a = Matrix::from_triplets(4, 4, vec![(0, 0, 1.0)], s);
    let wide = Matrix::from_triplets(4, 5, vec![(0, 0, 1.0)], s);
    assert!(matches!(
        a.try_concat_rows(&wide, s),
        Err(OpError::DimensionMismatch {
            op: "concat_rows",
            ..
        })
    ));
    let tall = Matrix::from_triplets(5, 4, vec![(0, 0, 1.0)], s);
    assert!(matches!(
        a.try_concat_cols(&tall, s),
        Err(OpError::DimensionMismatch {
            op: "concat_cols",
            ..
        })
    ));

    // Row/col arithmetic past u64::MAX is an error, not a panic.
    let huge = Matrix::<f64>::empty(u64::MAX, 4);
    match huge.try_concat_rows(&a, s) {
        Err(OpError::TooLargeToMaterialize { op, axis, extents }) => {
            assert_eq!(op, "concat_rows");
            assert_eq!(axis, Axis::Rows);
            assert_eq!(extents, (u64::MAX, 4));
        }
        other => panic!("expected TooLargeToMaterialize, got {other:?}"),
    }
    let vast = Matrix::<f64>::empty(4, u64::MAX);
    assert!(matches!(
        vast.try_concat_cols(&a, s),
        Err(OpError::TooLargeToMaterialize {
            axis: Axis::Cols,
            ..
        })
    ));
}

#[test]
fn try_extract_validates_selectors_extract_does_not() {
    let s = PlusTimes::<f64>::new();
    let a = Matrix::from_triplets(10, 10, vec![(1, 1, 1.0)], s);

    match a.try_extract(&[1, 99], &[1], s) {
        Err(OpError::IndexOutOfBounds { axis, index, bound }) => {
            assert_eq!(axis, Axis::Rows);
            assert_eq!(index, 99);
            assert_eq!(bound, 10);
        }
        other => panic!("expected IndexOutOfBounds, got {other:?}"),
    }
    assert!(matches!(
        a.try_extract(&[1], &[10], s),
        Err(OpError::IndexOutOfBounds {
            axis: Axis::Cols,
            index: 10,
            bound: 10,
        })
    ));

    let ok = a.try_extract(&[1], &[1], s).unwrap();
    assert_eq!(ok.nnz(), 1);

    // The classic extract keeps its permissive contract: out-of-range
    // selectors address empty key-space slices.
    let permissive = a.extract(&[1, 99], &[1], s);
    assert_eq!(permissive.nnz(), 1);
}
