//! `hyperspace` — one-stop facade for the *Mathematics of Digital
//! Hyperspace* workspace.
//!
//! Re-exports the full stack so applications depend on a single crate:
//!
//! * [`semiring`] — Table I algebras, power sets, semilinks, law checkers;
//! * [`hypersparse`] — the auto-switching sparse array engine (Fig. 4);
//! * [`core`] (`hyperspace-core`) — associative arrays (Table II),
//!   §IV semilink identities, the §V.B select;
//! * [`graph`] — BFS/SSSP/CC/triangles/PageRank + baselines (Figs. 1–3, 5);
//! * [`db`] — row-store / triple-store / exploded-schema views (Fig. 6);
//! * [`dnn`] — two-semiring sparse DNN inference (Figs. 7–8);
//! * [`pipeline`] — sharded streaming ingest/query service with snapshot
//!   isolation, backpressure, and checkpoint/restore (the paper's
//!   "75 billion inserts/second" streaming story, §II);
//! * [`serve`] — snapshot query-serving front-end: epoch registry with
//!   zero-copy pinning, the typed [`serve::QueryRequest`] API over all
//!   three database views plus SQL, LRU sub-view caching, and
//!   per-query-class latency histograms;
//! * [`netflow`] — the headline deployment: real-time network-traffic
//!   analytics with CIDR-hierarchical keys, windowed hypersparse
//!   traffic matrices, and streaming scan/DDoS detectors served as
//!   typed queries.
//!
//! See `examples/quickstart.rs` for a guided tour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use db;
pub use dnn;
pub use graph;
pub use hypersparse;
pub use netflow;
pub use pipeline;
pub use semiring;
pub use serve;

/// The paper's primary contribution: associative arrays and semilinks.
pub use hyperspace_core as core;

/// Commonly used items, one `use` away.
pub mod prelude {
    pub use db::{Pred, PredExpr, ResultSet, Row, Select, SqlError};
    pub use graph::incremental::{DegreeState, TriangleState};
    pub use hyperspace_core::{Assoc, Key};
    pub use hypersparse::{
        Coo, Dcsr, Format, Matrix, MetricsSnapshot, OpCtx, OpError, SparseVec, StreamConfig,
        StreamingMatrix, TraceMode, TraceRegistry,
    };
    pub use netflow::{
        GenConfig, NetflowConfig, NetflowQuery, NetflowResponse, NetflowService, TrafficGen,
    };
    pub use pipeline::{
        EpochSnapshot, IncrementalEpoch, Pipeline, PipelineConfig, PipelineError, SnapshotSink,
        Stage, StandingView, StandingViewStats,
    };
    pub use semiring::{
        AnyPair, LorLand, MaxMin, MaxPlus, MaxTimes, MinMax, MinPlus, MinTimes, Monoid, PSet,
        PlusTimes, Semilink, Semiring, UnionIntersect,
    };
    pub use serve::{
        QueryRequest, QueryResponse, QueryServer, ResponseBody, ServeError, SnapshotRegistry, View,
        ViewSchema,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_links_the_stack() {
        use crate::prelude::*;
        let s = PlusTimes::<f64>::new();
        let a = Assoc::from_triplets(vec![("x", "y", 1.0)], s);
        assert_eq!(a.nnz(), 1);
        let m = Matrix::<f64>::empty(4, 4);
        assert_eq!(m.nnz(), 0);
    }
}
