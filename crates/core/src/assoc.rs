//! The associative array type and the Table II operation set.

use std::fmt;
use std::sync::Arc;

use hypersparse::{Coo, Dcsr, Ix, Matrix, SparseVec};
use semiring::traits::{Monoid, Semiring, UnaryOp, Value};
use semiring::ZeroNorm;

use crate::key::{dict_index, make_dict, remap, union_dicts, Key};

/// An associative array `A : K₁ × K₂ → 𝕍` (§III).
///
/// Representation: sorted key dictionaries for rows and columns, plus a
/// [`hypersparse::Matrix`] indexed by dictionary positions. The matrix
/// chooses its own storage format; the dictionaries give the array its
/// key-based indexing ("pointers to strings" in the paper's conclusion).
#[derive(Clone, Debug)]
pub struct Assoc<K1, K2, T> {
    row_keys: Arc<Vec<K1>>,
    col_keys: Arc<Vec<K2>>,
    mat: Matrix<T>,
}

impl<K1: Key, K2: Key, T: Value> Assoc<K1, K2, T> {
    // ---- Table II: Construction  A = 𝔸(k₁, k₂, v) ----

    /// Build from `(row key, col key, value)` triplets. Duplicate keys
    /// ⊕-combine; semiring zeros are dropped.
    pub fn from_triplets<S: Semiring<Value = T>>(triplets: Vec<(K1, K2, T)>, s: S) -> Self {
        let row_keys = make_dict(triplets.iter().map(|t| t.0.clone()).collect());
        let col_keys = make_dict(triplets.iter().map(|t| t.1.clone()).collect());
        let mut coo = Coo::new(row_keys.len() as Ix, col_keys.len() as Ix);
        for (k1, k2, v) in triplets {
            let r = dict_index(&row_keys, &k1).expect("key in own dict");
            let c = dict_index(&col_keys, &k2).expect("key in own dict");
            coo.push(r, c, v);
        }
        Assoc {
            row_keys: Arc::new(row_keys),
            col_keys: Arc::new(col_keys),
            mat: Matrix::from_dcsr(coo.build_dcsr(s), s),
        }
    }

    /// The empty associative array (no keys, no entries).
    pub fn new_empty() -> Self {
        Assoc {
            row_keys: Arc::new(Vec::new()),
            col_keys: Arc::new(Vec::new()),
            mat: Matrix::empty(0, 0),
        }
    }

    /// Assemble from aligned parts: sorted unique key dictionaries and a
    /// matrix whose dimensions equal the dictionary lengths.
    pub fn from_parts(row_keys: Vec<K1>, col_keys: Vec<K2>, mat: Matrix<T>) -> Self {
        assert!(
            row_keys.windows(2).all(|w| w[0] < w[1]),
            "row keys must be sorted unique"
        );
        assert!(
            col_keys.windows(2).all(|w| w[0] < w[1]),
            "col keys must be sorted unique"
        );
        assert_eq!(
            mat.nrows(),
            row_keys.len() as Ix,
            "matrix/dict row mismatch"
        );
        assert_eq!(
            mat.ncols(),
            col_keys.len() as Ix,
            "matrix/dict col mismatch"
        );
        Assoc {
            row_keys: Arc::new(row_keys),
            col_keys: Arc::new(col_keys),
            mat,
        }
    }

    // ---- Table II: Permutation ℙ(k₁, k₂) = 𝔸(k₁, k₂, 1) ----

    /// The permutation-pattern array: value `1` at each given key pair.
    /// Pairs must pair distinct row keys with distinct column keys for a
    /// true ℙ; the constructor does not enforce it (the semilink checks
    /// test `|A|₀ = ℙ` explicitly) but duplicates still ⊕-combine.
    pub fn permutation<S: Semiring<Value = T>>(pairs: Vec<(K1, K2)>, s: S) -> Self {
        let one = s.one();
        Self::from_triplets(
            pairs
                .into_iter()
                .map(|(a, b)| (a, b, one.clone()))
                .collect(),
            s,
        )
    }

    /// All-ones array `𝟙` over the given key sets (used by projections and
    /// the §V.B select mask; keep the key sets small — this is dense).
    pub fn ones<S: Semiring<Value = T>>(row_keys: Vec<K1>, col_keys: Vec<K2>, s: S) -> Self {
        let rk = make_dict(row_keys);
        let ck = make_dict(col_keys);
        let one = s.one();
        let mut trips = Vec::with_capacity(rk.len() * ck.len());
        for r in &rk {
            for c in &ck {
                trips.push((r.clone(), c.clone(), one.clone()));
            }
        }
        Self::from_triplets(trips, s)
    }

    // ---- accessors ----

    /// Table II `row(A)`: the sorted unique row keys.
    pub fn row_keys(&self) -> &[K1] {
        &self.row_keys
    }

    /// Table II `col(A)`: the sorted unique column keys.
    pub fn col_keys(&self) -> &[K2] {
        &self.col_keys
    }

    /// Table II `nnz(A)`.
    pub fn nnz(&self) -> usize {
        self.mat.nnz()
    }

    /// `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.nnz() == 0
    }

    /// The backing matrix (storage format, bytes, …).
    pub fn matrix(&self) -> &Matrix<T> {
        &self.mat
    }

    /// Point lookup by keys.
    pub fn get(&self, k1: &K1, k2: &K2) -> Option<T> {
        let r = dict_index(&self.row_keys, k1)?;
        let c = dict_index(&self.col_keys, k2)?;
        self.mat.get(r, c).cloned()
    }

    /// One row as `(column key, value)` pairs in key order.
    pub fn row(&self, k1: &K1) -> Vec<(K2, T)> {
        let Some(r) = dict_index(&self.row_keys, k1) else {
            return Vec::new();
        };
        let d = self.mat.as_dcsr();
        let (cols, vals) = d.row(r);
        cols.iter()
            .zip(vals)
            .map(|(&c, v)| (self.col_keys[c as usize].clone(), v.clone()))
            .collect()
    }

    // ---- Table II: Extraction  (k₁, k₂, v) = A ----

    /// All entries as key-addressed triplets, sorted by `(k₁, k₂)`.
    pub fn to_triplets(&self) -> Vec<(K1, K2, T)> {
        self.mat
            .to_triplets()
            .into_iter()
            .map(|(r, c, v)| {
                (
                    self.row_keys[r as usize].clone(),
                    self.col_keys[c as usize].clone(),
                    v,
                )
            })
            .collect()
    }

    // ---- Table II: Transpose ----

    /// `Aᵀ(k₂, k₁) = A(k₁, k₂)`.
    pub fn transpose<S: Semiring<Value = T>>(&self, s: S) -> Assoc<K2, K1, T> {
        Assoc {
            row_keys: self.col_keys.clone(),
            col_keys: self.row_keys.clone(),
            mat: self.mat.transpose(s),
        }
    }

    // ---- Table II: zero-norm and other unary maps ----

    /// The element-wise zero-norm `|A|₀`: every stored value becomes the
    /// semiring `1` — the array's sparsity pattern.
    pub fn zero_norm<S: Semiring<Value = T>>(&self, s: S) -> Self {
        self.apply(ZeroNorm(s), s)
    }

    /// Apply a unary operator to every stored value (new zeros drop).
    pub fn apply<S: Semiring<Value = T>, O: UnaryOp<T, T>>(&self, op: O, s: S) -> Self {
        Assoc {
            row_keys: self.row_keys.clone(),
            col_keys: self.col_keys.clone(),
            mat: self.mat.apply(op, s),
        }
    }

    /// Keep entries satisfying a key-and-value predicate.
    pub fn filter<S, F>(&self, keep: F, s: S) -> Self
    where
        S: Semiring<Value = T>,
        F: Fn(&K1, &K2, &T) -> bool,
    {
        let rk = &self.row_keys;
        let ck = &self.col_keys;
        Assoc {
            row_keys: self.row_keys.clone(),
            col_keys: self.col_keys.clone(),
            mat: self
                .mat
                .select(|r, c, v| keep(&rk[r as usize], &ck[c as usize], v), s),
        }
    }

    /// `A(rows, cols)` — subarray by key lists. Requested keys absent
    /// from the array contribute empty rows/columns; the result's
    /// dictionaries are exactly the requested keys (sorted, deduped).
    pub fn extract<S: Semiring<Value = T>>(&self, rows: Vec<K1>, cols: Vec<K2>, s: S) -> Self {
        let rows = make_dict(rows);
        let cols = make_dict(cols);
        // Positions of requested keys that exist, plus their target slots.
        let mut row_pos = Vec::new();
        let mut row_slot = Vec::new();
        for (slot, k) in rows.iter().enumerate() {
            if let Some(p) = dict_index(&self.row_keys, k) {
                row_pos.push(p);
                row_slot.push(slot as Ix);
            }
        }
        let mut col_pos = Vec::new();
        let mut col_slot = Vec::new();
        for (slot, k) in cols.iter().enumerate() {
            if let Some(p) = dict_index(&self.col_keys, k) {
                col_pos.push(p);
                col_slot.push(slot as Ix);
            }
        }
        let sub = hypersparse::with_default_ctx(|ctx| {
            hypersparse::ops::extract_ctx(ctx, &self.mat.as_dcsr(), &row_pos, &col_pos)
        });
        // `sub` is indexed by position within row_pos/col_pos; remap those
        // positions to the requested-dictionary slots.
        let remapped = remap(
            &sub,
            Some(&row_slot),
            Some(&col_slot),
            rows.len() as Ix,
            cols.len() as Ix,
        );
        Assoc {
            row_keys: Arc::new(rows),
            col_keys: Arc::new(cols),
            mat: Matrix::from_dcsr(remapped, s),
        }
    }

    // ---- Table II: element-wise ⊕ / ⊗ with key alignment ----

    /// `C = A ⊕ B`. Key spaces union-align first; overlapping cells
    /// combine with ⊕, everything else passes through (`A ⊕ 0 = A`).
    pub fn ewise_add<S: Semiring<Value = T>>(&self, other: &Self, s: S) -> Self {
        let (rk, ck, a, b) = align_pair(self, other);
        Assoc {
            row_keys: Arc::new(rk),
            col_keys: Arc::new(ck),
            mat: Matrix::from_dcsr(
                hypersparse::with_default_ctx(|ctx| {
                    hypersparse::ops::ewise_add_ctx(ctx, &a, &b, s)
                }),
                s,
            ),
        }
    }

    /// `C = A ⊗ B`. Only cells present in both survive (`A ⊗ 0 = 0`).
    pub fn ewise_mul<S: Semiring<Value = T>>(&self, other: &Self, s: S) -> Self {
        let (rk, ck, a, b) = align_pair(self, other);
        Assoc {
            row_keys: Arc::new(rk),
            col_keys: Arc::new(ck),
            mat: Matrix::from_dcsr(
                hypersparse::with_default_ctx(|ctx| {
                    hypersparse::ops::ewise_mul_ctx(ctx, &a, &b, s)
                }),
                s,
            ),
        }
    }

    // ---- Table II: array multiplication ⊕.⊗ ----

    /// `C = A ⊕.⊗ B`: `C(k₁, k₂) = ⊕_k A(k₁, k) ⊗ B(k, k₂)`.
    ///
    /// The inner key dimension aligns by *union* of `col(A)` and
    /// `row(B)` — no conformance rule; keys missing on either side simply
    /// contribute nothing (§III's "little regard for the true
    /// dimensions").
    pub fn matmul<K3: Key, S: Semiring<Value = T>>(
        &self,
        other: &Assoc<K2, K3, T>,
        s: S,
    ) -> Assoc<K1, K3, T> {
        let (inner, map_a, map_b) = union_dicts(&self.col_keys, &other.row_keys);
        let n_inner = inner.len() as Ix;
        let a = remap(
            &self.mat.as_dcsr(),
            None,
            Some(&map_a),
            self.row_keys.len() as Ix,
            n_inner,
        );
        let b = remap(
            &other.mat.as_dcsr(),
            Some(&map_b),
            None,
            n_inner,
            other.col_keys.len() as Ix,
        );
        Assoc {
            row_keys: self.row_keys.clone(),
            col_keys: other.col_keys.clone(),
            mat: Matrix::from_dcsr(
                hypersparse::with_default_ctx(|ctx| hypersparse::ops::mxm_ctx(ctx, &a, &b, s)),
                s,
            ),
        }
    }

    // ---- reductions (the ⊕.⊗-against-𝟙 projections, folded directly) ----

    /// `out(k₁) = ⊕_{k₂} A(k₁, k₂)` as key/value pairs.
    pub fn reduce_rows<M: Monoid<T>>(&self, m: M) -> Vec<(K1, T)> {
        vec_to_keyed(&self.mat.reduce_rows(m), &self.row_keys)
    }

    /// `out(k₂) = ⊕_{k₁} A(k₁, k₂)` as key/value pairs.
    pub fn reduce_cols<M: Monoid<T>>(&self, m: M) -> Vec<(K2, T)> {
        vec_to_keyed(&self.mat.reduce_cols(m), &self.col_keys)
    }

    /// Fold every entry into one scalar.
    pub fn reduce_scalar<M: Monoid<T>>(&self, m: M) -> T {
        self.mat.reduce_scalar(m)
    }

    /// Drop rows and columns whose keys carry no entries (compaction
    /// after filtering ops). Canonical form for equality of key sets.
    pub fn prune<S: Semiring<Value = T>>(&self, s: S) -> Self {
        Self::from_triplets(self.to_triplets(), s)
    }

    /// Rename row keys through `f`. Keys that collide after renaming
    /// ⊕-combine their rows (D4M's key-mapping semantics — e.g. mapping
    /// timestamps to hours aggregates automatically).
    pub fn map_row_keys<K3, S, F>(&self, f: F, s: S) -> Assoc<K3, K2, T>
    where
        K3: Key,
        S: Semiring<Value = T>,
        F: Fn(&K1) -> K3,
    {
        Assoc::from_triplets(
            self.to_triplets()
                .into_iter()
                .map(|(k1, k2, v)| (f(&k1), k2, v))
                .collect(),
            s,
        )
    }

    /// Rename column keys through `f`; collisions ⊕-combine.
    pub fn map_col_keys<K3, S, F>(&self, f: F, s: S) -> Assoc<K1, K3, T>
    where
        K3: Key,
        S: Semiring<Value = T>,
        F: Fn(&K2) -> K3,
    {
        Assoc::from_triplets(
            self.to_triplets()
                .into_iter()
                .map(|(k1, k2, v)| (k1, f(&k2), v))
                .collect(),
            s,
        )
    }

    /// The `k` largest-value entries of each row (ties by column key),
    /// as a filtered associative array. Requires `T: PartialOrd`.
    pub fn top_k_per_row<S: Semiring<Value = T>>(&self, k: usize, s: S) -> Self
    where
        T: PartialOrd,
    {
        let mut keep = Vec::new();
        for k1 in self.row_keys() {
            let mut row = self.row(k1);
            row.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            for (k2, v) in row.into_iter().take(k) {
                keep.push((k1.clone(), k2, v));
            }
        }
        Assoc::from_triplets(keep, s)
    }
}

impl<K: Key, T: Value> Assoc<K, K, T> {
    /// Table II `𝕀(k) = ℙ(k, k)`: the identity array on a key set.
    pub fn identity<S: Semiring<Value = T>>(keys: Vec<K>, s: S) -> Self {
        Self::permutation(keys.into_iter().map(|k| (k.clone(), k)).collect(), s)
    }
}

/// Mathematical equality: same stored triplets, regardless of storage
/// format or of empty keys lingering in dictionaries.
impl<K1: Key, K2: Key, T: Value> PartialEq for Assoc<K1, K2, T> {
    fn eq(&self, other: &Self) -> bool {
        self.to_triplets() == other.to_triplets()
    }
}

impl<K1, K2, T> fmt::Display for Assoc<K1, K2, T>
where
    K1: Key + fmt::Display,
    K2: Key + fmt::Display,
    T: Value + fmt::Display,
{
    /// Spreadsheet-style rendering (rows × columns, blank = absent) —
    /// the paper's "plug-in replacement for spreadsheets" view.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>12} |", "")?;
        for c in self.col_keys.iter() {
            write!(f, " {c:>10}")?;
        }
        writeln!(f)?;
        let d = self.mat.as_dcsr();
        for (r, k1) in self.row_keys.iter().enumerate() {
            write!(f, "{k1:>12} |")?;
            let (cols, vals) = d.row(r as Ix);
            let mut p = 0usize;
            for c in 0..self.col_keys.len() as Ix {
                if p < cols.len() && cols[p] == c {
                    write!(f, " {:>10}", vals[p])?;
                    p += 1;
                } else {
                    write!(f, " {:>10}", "")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

fn align_pair<K1: Key, K2: Key, T: Value>(
    a: &Assoc<K1, K2, T>,
    b: &Assoc<K1, K2, T>,
) -> (Vec<K1>, Vec<K2>, Dcsr<T>, Dcsr<T>) {
    let (rk, row_a, row_b) = union_dicts(&a.row_keys, &b.row_keys);
    let (ck, col_a, col_b) = union_dicts(&a.col_keys, &b.col_keys);
    let (nr, nc) = (rk.len() as Ix, ck.len() as Ix);
    let da = remap(&a.mat.as_dcsr(), Some(&row_a), Some(&col_a), nr, nc);
    let db = remap(&b.mat.as_dcsr(), Some(&row_b), Some(&col_b), nr, nc);
    (rk, ck, da, db)
}

fn vec_to_keyed<K: Key, T: Value>(v: &SparseVec<T>, dict: &[K]) -> Vec<(K, T)> {
    v.iter()
        .map(|(i, t)| (dict[i as usize].clone(), t.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::{MaxPlus, MinPlus, PlusMonoid, PlusTimes};

    fn s() -> PlusTimes<f64> {
        PlusTimes::new()
    }

    fn fruit() -> Assoc<&'static str, &'static str, f64> {
        Assoc::from_triplets(
            vec![
                ("alice", "apples", 2.0),
                ("alice", "pears", 1.0),
                ("bob", "apples", 5.0),
            ],
            s(),
        )
    }

    #[test]
    fn construction_and_lookup() {
        let a = fruit();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.row_keys(), &["alice", "bob"]);
        assert_eq!(a.col_keys(), &["apples", "pears"]);
        assert_eq!(a.get(&"alice", &"pears"), Some(1.0));
        assert_eq!(a.get(&"bob", &"pears"), None);
        assert_eq!(a.get(&"carol", &"apples"), None);
    }

    #[test]
    fn duplicate_triplets_combine() {
        let a = Assoc::from_triplets(vec![("x", "y", 1.0), ("x", "y", 2.0)], s());
        assert_eq!(a.get(&"x", &"y"), Some(3.0));
        let m = Assoc::from_triplets(
            vec![("x", "y", 5.0), ("x", "y", 2.0)],
            MinPlus::<f64>::new(),
        );
        assert_eq!(m.get(&"x", &"y"), Some(2.0));
    }

    #[test]
    fn extraction_round_trips() {
        let a = fruit();
        let b = Assoc::from_triplets(a.to_triplets(), s());
        assert_eq!(a, b);
    }

    #[test]
    fn ewise_add_aligns_key_spaces() {
        let a = fruit();
        let b = Assoc::from_triplets(vec![("bob", "apples", 1.0), ("carol", "figs", 3.0)], s());
        let c = a.ewise_add(&b, s());
        assert_eq!(c.get(&"bob", &"apples"), Some(6.0));
        assert_eq!(c.get(&"alice", &"apples"), Some(2.0));
        assert_eq!(c.get(&"carol", &"figs"), Some(3.0));
        assert_eq!(c.row_keys(), &["alice", "bob", "carol"]);
        assert_eq!(c.col_keys(), &["apples", "figs", "pears"]);
    }

    #[test]
    fn ewise_mul_is_intersection() {
        let a = fruit();
        let b = Assoc::from_triplets(vec![("bob", "apples", 2.0), ("carol", "figs", 3.0)], s());
        let c = a.ewise_mul(&b, s());
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(&"bob", &"apples"), Some(10.0));
    }

    #[test]
    fn matmul_aligns_inner_keys() {
        // purchases: person × fruit; prices: fruit × currency.
        let purchases = fruit();
        let prices = Assoc::from_triplets(
            vec![
                ("apples", "usd", 0.5),
                ("pears", "usd", 0.75),
                ("figs", "usd", 2.0),
            ],
            s(),
        );
        let cost = purchases.matmul(&prices, s());
        assert_eq!(cost.get(&"alice", &"usd"), Some(2.0 * 0.5 + 1.0 * 0.75));
        assert_eq!(cost.get(&"bob", &"usd"), Some(2.5));
    }

    #[test]
    fn matmul_disjoint_inner_keys_is_zero() {
        let a = Assoc::from_triplets(vec![("r", "x", 1.0)], s());
        let b = Assoc::from_triplets(vec![("y", "c", 1.0)], s());
        let c = a.matmul(&b, s());
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn transpose_swaps_keys() {
        let a = fruit();
        let t = a.transpose(s());
        assert_eq!(t.get(&"apples", &"bob"), Some(5.0));
        assert_eq!(t.transpose(s()), a);
    }

    #[test]
    fn identity_and_permutation() {
        let i = Assoc::identity(vec!["a", "b"], s());
        assert_eq!(i.get(&"a", &"a"), Some(1.0));
        assert_eq!(i.get(&"a", &"b"), None);
        // A ⊕.⊗ 𝕀 = A when 𝕀 covers col(A).
        let a = fruit();
        let id = Assoc::identity(vec!["apples", "pears"], s());
        assert_eq!(a.matmul(&id, s()), a);
    }

    #[test]
    fn zero_norm_is_pattern() {
        let a = fruit();
        let p = a.zero_norm(s());
        assert_eq!(p.get(&"bob", &"apples"), Some(1.0));
        assert_eq!(p.nnz(), a.nnz());
    }

    #[test]
    fn extract_subarray() {
        let a = fruit();
        let sub = a.extract(vec!["alice", "zed"], vec!["pears"], s());
        assert_eq!(sub.get(&"alice", &"pears"), Some(1.0));
        assert_eq!(sub.nnz(), 1);
        assert_eq!(sub.row_keys(), &["alice", "zed"]); // requested keys kept
    }

    #[test]
    fn reductions_with_keys() {
        let a = fruit();
        let rows = a.reduce_rows(PlusMonoid::<f64>::default());
        assert_eq!(rows, vec![("alice", 3.0), ("bob", 5.0)]);
        let cols = a.reduce_cols(PlusMonoid::<f64>::default());
        assert_eq!(cols, vec![("apples", 7.0), ("pears", 1.0)]);
        assert_eq!(a.reduce_scalar(PlusMonoid::<f64>::default()), 8.0);
    }

    #[test]
    fn filter_by_key_and_value() {
        let a = fruit();
        let only_alice = a.filter(|k1, _, _| *k1 == "alice", s());
        assert_eq!(only_alice.nnz(), 2);
        let big = a.filter(|_, _, v| *v > 1.5, s());
        assert_eq!(big.nnz(), 2);
    }

    #[test]
    fn tropical_assoc() {
        let t = MaxPlus::<f64>::new();
        let a = Assoc::from_triplets(vec![("x", "y", 1.0), ("y", "z", 2.0)], t);
        let b = Assoc::from_triplets(vec![("y", "z", 10.0)], t);
        let c = a.ewise_add(&b, t);
        assert_eq!(c.get(&"y", &"z"), Some(10.0)); // max
    }

    #[test]
    fn display_renders_table() {
        let a = fruit();
        let text = format!("{a}");
        assert!(text.contains("alice"));
        assert!(text.contains("apples"));
    }

    #[test]
    fn map_keys_aggregates_collisions() {
        let a = Assoc::from_triplets(
            vec![
                ("2026-07-08T10:15", "pkts", 3.0),
                ("2026-07-08T10:45", "pkts", 4.0),
                ("2026-07-08T11:05", "pkts", 5.0),
            ],
            s(),
        );
        // Truncate timestamps to the hour: the 10 o'clock rows merge.
        let hourly = a.map_row_keys(|k| k[..13].to_string(), s());
        assert_eq!(hourly.row_keys().len(), 2);
        assert_eq!(hourly.get(&"2026-07-08T10".to_string(), &"pkts"), Some(7.0));
    }

    #[test]
    fn map_col_keys_strips_prefixes() {
        let a = Assoc::from_triplets(vec![("r", "src|a", 1.0), ("r", "src|b", 2.0)], s());
        let stripped = a.map_col_keys(|c| c[4..].to_string(), s());
        assert_eq!(stripped.get(&"r", &"a".to_string()), Some(1.0));
        assert_eq!(stripped.col_keys(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn top_k_per_row_keeps_largest() {
        let a = Assoc::from_triplets(
            vec![
                ("r", "a", 1.0),
                ("r", "b", 5.0),
                ("r", "c", 3.0),
                ("q", "a", 2.0),
            ],
            s(),
        );
        let top = a.top_k_per_row(2, s());
        assert_eq!(top.get(&"r", &"b"), Some(5.0));
        assert_eq!(top.get(&"r", &"c"), Some(3.0));
        assert_eq!(top.get(&"r", &"a"), None);
        assert_eq!(top.get(&"q", &"a"), Some(2.0)); // short rows survive whole
    }

    #[test]
    fn prune_drops_empty_keys() {
        let a = fruit();
        let none = a.filter(|_, _, _| false, s());
        assert_eq!(none.row_keys().len(), 2); // dict lingers…
        assert_eq!(none.prune(s()).row_keys().len(), 0); // …until pruned
    }
}
