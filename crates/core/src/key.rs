//! Sortable key sets and dictionary alignment.
//!
//! §III: row and column keys "can be any sortable sets, such as the
//! integers, real numbers, or strings". A key dictionary is a sorted,
//! deduplicated `Vec<K>`; an array's matrix indices are positions in its
//! dictionaries. Binary operations align operands by merging dictionaries
//! — the maps from old to new positions are strictly increasing, so the
//! sorted sparse structure is preserved under remapping.

use hypersparse::{Dcsr, Ix};
use semiring::traits::Value;

/// A sortable key: anything ordered, hashable, cloneable, and printable.
pub trait Key: Ord + Clone + std::fmt::Debug + Send + Sync + 'static {}
impl<K: Ord + Clone + std::fmt::Debug + Send + Sync + 'static> Key for K {}

/// Sort + dedup a key list into a dictionary.
pub fn make_dict<K: Key>(mut keys: Vec<K>) -> Vec<K> {
    keys.sort();
    keys.dedup();
    keys
}

/// Binary-search a dictionary.
pub fn dict_index<K: Key>(dict: &[K], key: &K) -> Option<Ix> {
    dict.binary_search(key).ok().map(|i| i as Ix)
}

/// Merge two sorted dictionaries; returns the union plus, for each input,
/// the strictly increasing map `old position → union position`.
pub fn union_dicts<K: Key>(a: &[K], b: &[K]) -> (Vec<K>, Vec<Ix>, Vec<Ix>) {
    let mut merged = Vec::with_capacity(a.len() + b.len());
    let mut map_a = Vec::with_capacity(a.len());
    let mut map_b = Vec::with_capacity(b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        if j >= b.len() || (i < a.len() && a[i] < b[j]) {
            map_a.push(merged.len() as Ix);
            merged.push(a[i].clone());
            i += 1;
        } else if i >= a.len() || b[j] < a[i] {
            map_b.push(merged.len() as Ix);
            merged.push(b[j].clone());
            j += 1;
        } else {
            map_a.push(merged.len() as Ix);
            map_b.push(merged.len() as Ix);
            merged.push(a[i].clone());
            i += 1;
            j += 1;
        }
    }
    (merged, map_a, map_b)
}

/// Sorted intersection of two dictionaries.
pub fn intersect_dicts<K: Key>(a: &[K], b: &[K]) -> Vec<K> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i].clone());
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Rewrite a matrix's row/column ids through strictly increasing position
/// maps (identity if `None`) into a key space of the given dimensions.
/// Monotone maps preserve sortedness, so this is a straight `O(nnz)` copy.
pub fn remap<T: Value>(
    m: &Dcsr<T>,
    row_map: Option<&[Ix]>,
    col_map: Option<&[Ix]>,
    new_nrows: Ix,
    new_ncols: Ix,
) -> Dcsr<T> {
    debug_assert!(row_map.is_none_or(|f| f.windows(2).all(|w| w[0] < w[1])));
    debug_assert!(col_map.is_none_or(|f| f.windows(2).all(|w| w[0] < w[1])));
    let mut rows = Vec::with_capacity(m.n_nonempty_rows());
    let mut rowptr = vec![0usize];
    let mut colidx = Vec::with_capacity(m.nnz());
    let mut vals = Vec::with_capacity(m.nnz());
    for (r, cols, vs) in m.iter_rows() {
        rows.push(match row_map {
            Some(f) => f[r as usize],
            None => r,
        });
        for (&c, v) in cols.iter().zip(vs) {
            colidx.push(match col_map {
                Some(f) => f[c as usize],
                None => c,
            });
            vals.push(v.clone());
        }
        rowptr.push(colidx.len());
    }
    Dcsr::from_parts(new_nrows, new_ncols, rows, rowptr, colidx, vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_dict_sorts_and_dedups() {
        assert_eq!(make_dict(vec!["b", "a", "b", "c"]), vec!["a", "b", "c"]);
        assert_eq!(dict_index(&["a", "b", "c"], &"b"), Some(1));
        assert_eq!(dict_index(&["a", "b", "c"], &"z"), None);
    }

    #[test]
    fn union_maps_are_consistent() {
        let a = vec!["a", "c", "e"];
        let b = vec!["b", "c", "d"];
        let (u, ma, mb) = union_dicts(&a, &b);
        assert_eq!(u, vec!["a", "b", "c", "d", "e"]);
        for (i, &p) in ma.iter().enumerate() {
            assert_eq!(u[p as usize], a[i]);
        }
        for (j, &p) in mb.iter().enumerate() {
            assert_eq!(u[p as usize], b[j]);
        }
        // Strictly increasing maps.
        assert!(ma.windows(2).all(|w| w[0] < w[1]));
        assert!(mb.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn union_with_empty() {
        let a: Vec<&str> = vec![];
        let b = vec!["x", "y"];
        let (u, ma, mb) = union_dicts(&a, &b);
        assert_eq!(u, b);
        assert!(ma.is_empty());
        assert_eq!(mb, vec![0, 1]);
    }

    #[test]
    fn intersection() {
        assert_eq!(
            intersect_dicts(&["a", "b", "c"], &["b", "c", "d"]),
            vec!["b", "c"]
        );
        assert!(intersect_dicts(&["a"], &["b"]).is_empty());
    }

    #[test]
    fn remap_preserves_structure() {
        use hypersparse::Coo;
        use semiring::PlusTimes;
        let mut c = Coo::new(3, 3);
        c.extend([(0, 0, 1.0), (0, 2, 2.0), (2, 1, 3.0)]);
        let m = c.build_dcsr(PlusTimes::<f64>::new());
        // Rows {0,1,2} → {1,3,5}; cols {0,1,2} → {0,2,4}.
        let r = remap(&m, Some(&[1, 3, 5]), Some(&[0, 2, 4]), 6, 6);
        assert_eq!(r.get(1, 0), Some(&1.0));
        assert_eq!(r.get(1, 4), Some(&2.0));
        assert_eq!(r.get(5, 2), Some(&3.0));
        assert_eq!(r.nnz(), 3);
    }
}
