//! Associative array algebra — the paper's primary contribution.
//!
//! An associative array is a mapping `A : K₁ × K₂ → 𝕍` from *sortable key
//! sets* (strings, integers, IP addresses, timestamps …) to a semiring of
//! values (§III). This crate provides:
//!
//! * [`Assoc`] — the associative array type: two sorted key dictionaries
//!   over a [`hypersparse::Matrix`], with every operation of **Table II**
//!   (construction, extraction, permutation ℙ, identity 𝕀, transpose,
//!   `row`/`col`, `nnz`, the zero-norm `| |₀`, element-wise ⊕ and ⊗, and
//!   array multiplication ⊕.⊗ with automatic key-space alignment);
//! * [`semilink`] — the seven §IV identities of the semilink
//!   `(𝔸, ⊕, ⊗, ⊕.⊗, 0, 1, 𝕀)`, implemented as executable checks;
//! * [`select`] — the §V.B relational `select`, both as the paper's
//!   semilink formula over the `∪.∩` power-set semiring and as a direct
//!   scan, cross-validated against each other;
//! * [`range`] — D4M-style key-range and prefix subarray extraction;
//! * [`csv`] — spreadsheet- and triple-shaped CSV interchange (the
//!   conclusion's "plug-in replacement for spreadsheets").
//!
//! The "little regard for the true dimensions" property (§III) falls out
//! of the representation: binary operations union-merge the operand key
//! dictionaries and remap indices, so arrays over different (even
//! astronomically large) key spaces compose freely; what matters is only
//! the *overlap* of their keys.
//!
//! ```
//! use hyperspace_core::Assoc;
//! use semiring::PlusTimes;
//!
//! let s = PlusTimes::<f64>::new();
//! let a = Assoc::from_triplets(
//!     vec![("alice", "apples", 2.0), ("alice", "pears", 1.0), ("bob", "apples", 5.0)],
//!     s,
//! );
//! let b = Assoc::from_triplets(vec![("bob", "apples", 1.0), ("carol", "figs", 3.0)], s);
//!
//! // Different key spaces add fine; overlapping cells combine with ⊕.
//! let c = a.ewise_add(&b, s);
//! assert_eq!(c.get(&"bob", &"apples"), Some(6.0));
//! assert_eq!(c.get(&"carol", &"figs"), Some(3.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assoc;
pub mod cidr;
pub mod csv;
pub mod cxkey;
pub mod key;
pub mod range;
pub mod select;
pub mod semilink;

pub use assoc::Assoc;
pub use cxkey::{CxField, CxPrefix, CxSchema};
pub use key::Key;
