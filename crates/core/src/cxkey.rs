//! Complex-index keys — composite keys as ordered component tuples.
//!
//! "GraphBLAS Mathematical Opportunities" extends the source paper's key
//! algebra to **complex-index matrices**: keys that are themselves
//! structured tuples — `ip.port`, `time.bucket`, `doc.section` — whose
//! component order induces a hierarchy, exactly as the octets of an IPv4
//! address do. A [`CxSchema`] describes one such tuple shape and provides
//! the same two encodings [`crate::cidr`] ships for the single-component
//! IP case:
//!
//! * **String keys** for [`Assoc`]: each component rendered at a fixed
//!   width and the components concatenated with `.` separators, so
//!   lexicographic order of the concatenation equals numeric order of
//!   the tuple, and a whole-component prefix is literally a string
//!   prefix (D4M `starts_with` range extraction works unmodified).
//!   Rolled-up keys carry an explicit `/b` suffix (`b` = retained
//!   prefix bits) so aggregate rows can never collide with host rows.
//! * **Numeric keys** for [`Dcsr`]: the components bit-packed into the
//!   low bits of the `u64` index space, first component most
//!   significant. [`CxSchema::mask_ix`] zeroes the bits below a
//!   [`CxPrefix`] — a *monotone non-decreasing* map, so masking a
//!   sorted triple stream keeps it sorted and [`rollup_ctx`] runs in
//!   `O(nnz)` with a single duplicate-⊕-merge pass, recorded under
//!   [`Kernel::Rollup`].
//!
//! A [`CxPrefix`] names a point in the hierarchy: `k` whole leading
//! components plus optionally the high `bits` of the next one (the CIDR
//! `/p` is the one-component instance with a partial 32-bit field —
//! `core::cidr` now delegates here). Projection/rollup along any prefix
//! is idempotent and composes downward (`/a ∘ /ab = /a`), which the
//! `cxkey_props` suite pins over random schemas and data.

use std::time::Instant;

use hypersparse::coo::Coo;
use hypersparse::ctx::{with_default_ctx, OpCtx};
use hypersparse::dcsr::Dcsr;
use hypersparse::metrics::Kernel;
use hypersparse::Ix;
use semiring::traits::{Semiring, Value};

use crate::assoc::Assoc;

/// How one component renders in the string key layer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FieldCodec {
    /// A `bits`-wide unsigned integer, rendered as a zero-padded decimal
    /// of fixed width (enough digits for `2^bits − 1`).
    Dec {
        /// Component width in bits (`1..=64`, total schema ≤ 64).
        bits: u32,
    },
    /// A 32-bit IPv4 address rendered as a zero-padded dotted quad
    /// (`"010.002.003.004"`) — the [`crate::cidr`] string encoding.
    DottedQuad,
}

impl FieldCodec {
    /// Component width in bits.
    pub fn bits(self) -> u32 {
        match self {
            FieldCodec::Dec { bits } => bits,
            FieldCodec::DottedQuad => 32,
        }
    }
}

/// One named component of a composite key.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CxField {
    name: &'static str,
    codec: FieldCodec,
}

impl CxField {
    /// A decimal component `bits` wide.
    pub fn bits(name: &'static str, bits: u32) -> Self {
        CxField {
            name,
            codec: FieldCodec::Dec { bits },
        }
    }

    /// A dotted-quad IPv4 component (32 bits).
    pub fn dotted_quad(name: &'static str) -> Self {
        CxField {
            name,
            codec: FieldCodec::DottedQuad,
        }
    }

    /// The component name (`"ip"`, `"port"`, …).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The component's string-layer codec.
    pub fn codec(&self) -> FieldCodec {
        self.codec
    }
}

/// The low `bits` bits set (`bits ≤ 64`).
#[inline]
fn low_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

fn dec_digits(bits: u32) -> usize {
    // Fixed decimal width of the largest representable value.
    format!("{}", low_mask(bits)).len()
}

/// A point in a composite key's hierarchy: keep the first `fields`
/// whole components plus the high `bits` bits of the next one, zero the
/// rest. The CIDR `/p` is `CxPrefix::partial(0, p)` against the
/// one-component IP schema.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CxPrefix {
    /// Whole leading components retained.
    pub fields: usize,
    /// High bits of the next component retained (0 = component
    /// boundary).
    pub bits: u32,
}

impl CxPrefix {
    /// Retain the first `fields` whole components.
    pub const fn full_fields(fields: usize) -> Self {
        CxPrefix { fields, bits: 0 }
    }

    /// Retain `fields` whole components plus the high `bits` bits of
    /// the next.
    pub const fn partial(fields: usize, bits: u32) -> Self {
        CxPrefix { fields, bits }
    }
}

/// An ordered tuple of named components and both of its key encodings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CxSchema {
    fields: Vec<CxField>,
    /// Low-bit offset of each component in the packed index.
    shifts: Vec<u32>,
    total_bits: u32,
}

impl CxSchema {
    /// Build a schema from its components, first component most
    /// significant.
    ///
    /// # Panics
    /// If there are no components, a component is 0 bits wide, the
    /// total width exceeds the 64-bit index space, or names collide /
    /// contain the `.` and `/` key syntax characters.
    pub fn new(fields: Vec<CxField>) -> Self {
        assert!(!fields.is_empty(), "composite key needs ≥ 1 component");
        let mut seen = std::collections::BTreeSet::new();
        let mut total: u32 = 0;
        for f in &fields {
            assert!(f.codec.bits() >= 1, "component {:?} is 0 bits wide", f.name);
            assert!(
                !f.name.is_empty() && !f.name.contains(['.', '/']),
                "component name {:?} collides with key syntax",
                f.name
            );
            assert!(seen.insert(f.name), "duplicate component {:?}", f.name);
            total = total
                .checked_add(f.codec.bits())
                .expect("component widths overflow");
        }
        assert!(
            total <= 64,
            "composite key is {total} bits; the index space holds 64"
        );
        // First field most significant: its shift is the sum of all
        // later widths.
        let mut shifts = vec![0u32; fields.len()];
        let mut acc = 0u32;
        for (i, f) in fields.iter().enumerate().rev() {
            shifts[i] = acc;
            acc += f.codec.bits();
        }
        CxSchema {
            fields,
            shifts,
            total_bits: total,
        }
    }

    /// The components, most significant first.
    pub fn fields(&self) -> &[CxField] {
        &self.fields
    }

    /// Total packed width in bits. Index bits above this (tenant /
    /// protocol tags) pass through every schema operation untouched.
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// The full-resolution prefix (`/total_bits`): every component kept.
    pub fn full_prefix(&self) -> CxPrefix {
        CxPrefix::full_fields(self.fields.len())
    }

    /// How many leading bits `prefix` retains.
    ///
    /// # Panics
    /// If `prefix` names more components than the schema has, or more
    /// partial bits than the next component holds.
    pub fn prefix_bits(&self, prefix: CxPrefix) -> u32 {
        assert!(
            prefix.fields <= self.fields.len(),
            "prefix keeps {} components of {}",
            prefix.fields,
            self.fields.len()
        );
        let whole: u32 = self.fields[..prefix.fields]
            .iter()
            .map(|f| f.codec.bits())
            .sum();
        if prefix.bits == 0 {
            return whole;
        }
        assert!(
            prefix.fields < self.fields.len(),
            "partial bits past the last component"
        );
        let next = self.fields[prefix.fields].codec.bits();
        assert!(
            prefix.bits <= next,
            "prefix keeps {} bits of a {next}-bit component",
            prefix.bits
        );
        whole + prefix.bits
    }

    /// Bit-pack a component tuple into the low [`Self::total_bits`] of
    /// the index space, first component most significant.
    ///
    /// # Panics
    /// On arity mismatch or a component value wider than its field.
    pub fn pack(&self, parts: &[u64]) -> Ix {
        assert_eq!(
            parts.len(),
            self.fields.len(),
            "schema has {} components, got {}",
            self.fields.len(),
            parts.len()
        );
        let mut ix = 0u64;
        for ((f, &shift), &p) in self.fields.iter().zip(&self.shifts).zip(parts) {
            assert!(
                p <= low_mask(f.codec.bits()),
                "component {:?} = {p} exceeds {} bits",
                f.name,
                f.codec.bits()
            );
            ix |= p << shift;
        }
        ix
    }

    /// Unpack the low [`Self::total_bits`] of an index back into its
    /// component tuple (tag bits above the schema are ignored).
    pub fn unpack(&self, ix: Ix) -> Vec<u64> {
        self.fields
            .iter()
            .zip(&self.shifts)
            .map(|(f, &shift)| (ix >> shift) & low_mask(f.codec.bits()))
            .collect()
    }

    /// Zero every index bit below `prefix`. Monotone non-decreasing in
    /// `ix` (it only clears low bits), which is what keeps masked triple
    /// streams sorted and rollups a single merge pass. Bits above
    /// [`Self::total_bits`] pass through untouched.
    pub fn mask_ix(&self, ix: Ix, prefix: CxPrefix) -> Ix {
        let pb = self.prefix_bits(prefix);
        let space = low_mask(self.total_bits);
        let keep = space & !low_mask(self.total_bits - pb);
        (ix & !space) | (ix & keep)
    }

    /// Mask a component tuple to `prefix` resolution.
    pub fn mask_parts(&self, parts: &[u64], prefix: CxPrefix) -> Vec<u64> {
        self.unpack(self.mask_ix(self.pack(parts), prefix))
    }

    /// The fixed-width string key of a component tuple: each component
    /// rendered by its codec, joined with `.`. Zero padding makes
    /// lexicographic order equal numeric tuple order, and the first `k`
    /// components form a literal string prefix of the full key.
    pub fn key(&self, parts: &[u64]) -> String {
        assert_eq!(parts.len(), self.fields.len(), "arity mismatch");
        let mut out = String::new();
        for (f, &p) in self.fields.iter().zip(parts) {
            if !out.is_empty() {
                out.push('.');
            }
            match f.codec {
                FieldCodec::Dec { bits } => {
                    use std::fmt::Write;
                    let _ = write!(out, "{:0w$}", p, w = dec_digits(bits));
                }
                FieldCodec::DottedQuad => {
                    use std::fmt::Write;
                    let [a, b, c, d] = (p as u32).to_be_bytes();
                    let _ = write!(out, "{a:03}.{b:03}.{c:03}.{d:03}");
                }
            }
        }
        out
    }

    /// The string key of a packed index.
    pub fn key_of(&self, ix: Ix) -> String {
        self.key(&self.unpack(ix))
    }

    /// The key for a rolled-up block: the masked tuple plus an explicit
    /// `/b` suffix (`b` = retained prefix bits), keeping aggregate keys
    /// disjoint from host keys at every resolution. The one-component
    /// IP instance reproduces [`crate::cidr::cidr_key`] exactly.
    pub fn prefix_key(&self, parts: &[u64], prefix: CxPrefix) -> String {
        let b = self.prefix_bits(prefix);
        format!("{}/{b}", self.key(&self.mask_parts(parts, prefix)))
    }

    /// Parse a key produced by [`Self::key`] or [`Self::prefix_key`]
    /// back into its component tuple. Component values may be unpadded
    /// (`"10.2.3.4.80"` parses against `ip.port`). An optional `/b`
    /// suffix is validated — `b` must be a plain decimal ≤
    /// [`Self::total_bits`] with no further `/` segments — but not
    /// applied (the returned tuple is the written one, mirroring
    /// [`crate::cidr::parse_ip_key`]). Returns `None` for malformed
    /// input: wrong arity, non-digit characters, overwide components,
    /// or a bad suffix.
    pub fn parse_key(&self, key: &str) -> Option<Vec<u64>> {
        let mut slash = key.split('/');
        let body = slash.next()?;
        if let Some(suffix) = slash.next() {
            if slash.next().is_some() {
                return None; // more than one '/' segment
            }
            if suffix.is_empty() || !suffix.bytes().all(|b| b.is_ascii_digit()) {
                return None;
            }
            let b: u32 = suffix.parse().ok()?;
            if b > self.total_bits {
                return None;
            }
        }
        let mut segs = body.split('.');
        let mut dec = |width: u32| -> Option<u64> {
            let seg = segs.next()?;
            if seg.is_empty() || !seg.bytes().all(|b| b.is_ascii_digit()) {
                return None;
            }
            let v: u64 = seg.parse().ok()?;
            (v <= low_mask(width)).then_some(v)
        };
        let mut parts = Vec::with_capacity(self.fields.len());
        for f in &self.fields {
            let p = match f.codec {
                FieldCodec::Dec { bits } => dec(bits)?,
                FieldCodec::DottedQuad => {
                    let mut ip = 0u64;
                    for _ in 0..4 {
                        ip = (ip << 8) | dec(8)?;
                    }
                    ip
                }
            };
            parts.push(p);
        }
        if segs.next().is_some() {
            return None; // trailing components
        }
        Some(parts)
    }
}

/// Which dimensions a [`rollup_ctx`] collapses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RollupAxes {
    /// Mask row keys only.
    Rows,
    /// Mask column keys only.
    Cols,
    /// Mask both dimensions.
    Both,
}

/// Project the row keys of a composite-keyed associative array onto
/// `prefix`. Rows landing in the same block ⊕-combine (the
/// [`Assoc::map_row_keys`] collision semantics). Keys that don't parse
/// against the schema pass through unchanged, so already-rolled-up rows
/// (whose `/b` suffix re-parses) and foreign rows coexist; the
/// operation is idempotent at a fixed prefix and composes downward.
pub fn project_rows<K2, T, S>(
    schema: &CxSchema,
    a: &Assoc<String, K2, T>,
    prefix: CxPrefix,
    s: S,
) -> Assoc<String, K2, T>
where
    K2: crate::key::Key,
    T: Value,
    S: Semiring<Value = T>,
{
    a.map_row_keys(
        |k| {
            schema
                .parse_key(k)
                .map_or_else(|| k.clone(), |parts| schema.prefix_key(&parts, prefix))
        },
        s,
    )
}

/// Project the column keys onto `prefix`; see [`project_rows`].
pub fn project_cols<K1, T, S>(
    schema: &CxSchema,
    a: &Assoc<K1, String, T>,
    prefix: CxPrefix,
    s: S,
) -> Assoc<K1, String, T>
where
    K1: crate::key::Key,
    T: Value,
    S: Semiring<Value = T>,
{
    a.map_col_keys(
        |k| {
            schema
                .parse_key(k)
                .map_or_else(|| k.clone(), |parts| schema.prefix_key(&parts, prefix))
        },
        s,
    )
}

/// Project both key dimensions onto `prefix`: the block-to-block rollup
/// of a composite-keyed matrix.
pub fn project<T, S>(
    schema: &CxSchema,
    a: &Assoc<String, String, T>,
    prefix: CxPrefix,
    s: S,
) -> Assoc<String, String, T>
where
    T: Value,
    S: Semiring<Value = T> + Copy,
{
    project_cols(schema, &project_rows(schema, a, prefix, s), prefix, s)
}

/// Roll a `Dcsr` up to `prefix` resolution: mask the selected key
/// dimensions with [`CxSchema::mask_ix`] and ⊕-merge entries landing on
/// the same cell. `O(nnz)` — masking is monotone, so the triple stream
/// stays sorted and the COO build's duplicate merge is a single pass.
/// Records under [`Kernel::Rollup`].
pub fn rollup_ctx<T, S>(
    ctx: &OpCtx,
    schema: &CxSchema,
    a: &Dcsr<T>,
    prefix: CxPrefix,
    axes: RollupAxes,
    s: S,
) -> Dcsr<T>
where
    T: Value,
    S: Semiring<Value = T>,
{
    let _span = ctx.kernel_span(Kernel::Rollup, || {
        format!(
            "/{} {axes:?} over {} nnz",
            schema.prefix_bits(prefix),
            a.nnz()
        )
    });
    let start = Instant::now();
    let (mask_r, mask_c) = match axes {
        RollupAxes::Rows => (true, false),
        RollupAxes::Cols => (false, true),
        RollupAxes::Both => (true, true),
    };
    let mut coo = Coo::new(a.nrows(), a.ncols());
    coo.extend(a.iter().map(|(r, c, v)| {
        (
            if mask_r { schema.mask_ix(r, prefix) } else { r },
            if mask_c { schema.mask_ix(c, prefix) } else { c },
            v.clone(),
        )
    }));
    let out = coo.build_dcsr(s);
    ctx.metrics().record(
        Kernel::Rollup,
        start.elapsed(),
        a.nnz() as u64,
        out.nnz() as u64,
        a.nnz() as u64,
        (a.bytes() + out.bytes()) as u64,
    );
    out
}

/// [`rollup_ctx`] through the thread-local default context.
pub fn rollup<T, S>(
    schema: &CxSchema,
    a: &Dcsr<T>,
    prefix: CxPrefix,
    axes: RollupAxes,
    s: S,
) -> Dcsr<T>
where
    T: Value,
    S: Semiring<Value = T>,
{
    with_default_ctx(|ctx| rollup_ctx(ctx, schema, a, prefix, axes, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::PlusTimes;

    fn socket() -> CxSchema {
        CxSchema::new(vec![CxField::dotted_quad("ip"), CxField::bits("port", 16)])
    }

    fn doc() -> CxSchema {
        CxSchema::new(vec![
            CxField::bits("doc", 24),
            CxField::bits("section", 8),
            CxField::bits("para", 8),
        ])
    }

    #[test]
    fn pack_unpack_round_trips_and_orders() {
        let s = socket();
        assert_eq!(s.total_bits(), 48);
        let ix = s.pack(&[0x0A020304, 443]);
        assert_eq!(ix, (0x0A020304u64 << 16) | 443);
        assert_eq!(s.unpack(ix), vec![0x0A020304, 443]);
        // Packed order is tuple order: ip dominates, port breaks ties.
        assert!(s.pack(&[5, 9]) < s.pack(&[6, 0]));
        assert!(s.pack(&[5, 9]) < s.pack(&[5, 10]));
    }

    #[test]
    fn string_keys_sort_like_tuples_and_round_trip() {
        let sch = socket();
        let key = sch.key(&[0x0A020304, 80]);
        assert_eq!(key, "010.002.003.004.00080");
        assert_eq!(sch.parse_key(&key), Some(vec![0x0A020304, 80]));
        assert_eq!(sch.parse_key("10.2.3.4.80"), Some(vec![0x0A020304, 80]));
        let mut tuples = [[9u64, 65535], [10, 0], [9, 70000 - 65535], [255, 1]];
        tuples.sort();
        let mut keys: Vec<String> = tuples.iter().map(|t| sch.key(t)).collect();
        let sorted = keys.clone();
        keys.sort();
        assert_eq!(keys, sorted, "lexicographic = numeric tuple order");
        // Whole-component prefixes are string prefixes.
        assert!(sch.key(&[0x0A020304, 80]).starts_with("010.002.003.004"));
    }

    #[test]
    fn parse_rejects_malformed_keys() {
        let sch = socket();
        assert_eq!(sch.parse_key("10.2.3.4"), None); // missing port
        assert_eq!(sch.parse_key("10.2.3.4.80.9"), None); // trailing
        assert_eq!(sch.parse_key("10.2.3.4.70000"), None); // port > 16 bits
        assert_eq!(sch.parse_key("10.2.3.400.80"), None); // octet > 255
        assert_eq!(sch.parse_key("10.2.3.4.+80"), None); // sign chars
        assert_eq!(sch.parse_key("10.2.3.4.80/49"), None); // suffix > 48
        assert_eq!(sch.parse_key("10.2.3.4.80/32/8"), None); // extra '/'
        assert_eq!(sch.parse_key("10.2.3.4.80/"), None); // empty suffix
        assert_eq!(sch.parse_key("10.2.3.4.80/48"), Some(vec![0x0A020304, 80]));
    }

    #[test]
    fn masking_is_monotone_and_composes_downward() {
        let sch = socket();
        let ip_only = CxPrefix::full_fields(1);
        let slash16 = CxPrefix::partial(0, 16);
        let ix = sch.pack(&[0x0A020304, 443]);
        assert_eq!(sch.mask_ix(ix, ip_only), 0x0A020304u64 << 16);
        assert_eq!(sch.mask_ix(ix, slash16), 0x0A020000u64 << 16);
        // /a ∘ /ab = /a on the bit layer.
        assert_eq!(
            sch.mask_ix(sch.mask_ix(ix, ip_only), slash16),
            sch.mask_ix(ix, slash16)
        );
        // Monotone over a sorted sample; tag bits above 48 survive.
        let mut prev = 0u64;
        for raw in [0u64, 5, 1 << 20, 0xABCD_1234_5678, (1 << 48) - 1] {
            assert!(sch.mask_ix(raw, ip_only) >= prev);
            prev = sch.mask_ix(raw, ip_only);
        }
        let tagged = (7u64 << 48) | ix;
        assert_eq!(sch.mask_ix(tagged, slash16) >> 48, 7);
    }

    #[test]
    fn prefix_keys_carry_bit_suffix() {
        let sch = socket();
        assert_eq!(
            sch.prefix_key(&[0x0A020304, 443], CxPrefix::full_fields(1)),
            "010.002.003.004.00000/32"
        );
        assert_eq!(
            sch.prefix_key(&[0x0A020304, 443], CxPrefix::partial(0, 16)),
            "010.002.000.000.00000/16"
        );
        let d = doc();
        assert_eq!(
            d.prefix_key(&[7, 3, 9], CxPrefix::full_fields(2)),
            "00000007.003.000/32"
        );
    }

    #[test]
    fn assoc_projection_aggregates_and_is_idempotent() {
        let s = PlusTimes::<f64>::new();
        let sch = socket();
        let a = Assoc::from_triplets(
            vec![
                (sch.key(&[10, 80]), sch.key(&[20, 443]), 2.0),
                (sch.key(&[10, 8080]), sch.key(&[20, 443]), 3.0),
                (sch.key(&[11, 80]), sch.key(&[21, 22]), 1.0),
            ],
            s,
        );
        let ip_only = CxPrefix::full_fields(1);
        let p = project(&sch, &a, ip_only, s);
        // Both port-80/8080 flows from host 10 fold into one ip row.
        assert_eq!(
            p.get(
                &sch.prefix_key(&[10, 0], ip_only),
                &sch.prefix_key(&[20, 0], ip_only)
            ),
            Some(5.0)
        );
        assert_eq!(p.nnz(), 2);
        assert_eq!(project(&sch, &p, ip_only, s), p);
    }

    #[test]
    fn dcsr_rollup_merges_blocks() {
        let s = PlusTimes::<u64>::new();
        let sch = socket();
        let mut coo = Coo::new(1 << 48, 1 << 48);
        coo.extend([
            (sch.pack(&[10, 80]), sch.pack(&[20, 443]), 2u64),
            (sch.pack(&[10, 8080]), sch.pack(&[20, 443]), 3),
            (sch.pack(&[11, 80]), sch.pack(&[21, 22]), 1),
        ]);
        let a = coo.build_dcsr(s);
        let ip_only = CxPrefix::full_fields(1);
        let r = rollup(&sch, &a, ip_only, RollupAxes::Both, s);
        assert_eq!(r.nnz(), 2);
        assert_eq!(r.get(10 << 16, 20 << 16).copied(), Some(5));
        let rr = rollup(&sch, &r, ip_only, RollupAxes::Both, s);
        assert!(rr.iter().eq(r.iter()), "rollup is idempotent");
        // Downward composition through a partial prefix.
        let via_ip = rollup(&sch, &r, CxPrefix::partial(0, 8), RollupAxes::Both, s);
        let direct = rollup(&sch, &a, CxPrefix::partial(0, 8), RollupAxes::Both, s);
        assert!(via_ip.iter().eq(direct.iter()), "/a ∘ /ab = /a");
    }

    #[test]
    fn rollup_records_kernel_metrics() {
        let s = PlusTimes::<u64>::new();
        let sch = doc();
        let mut coo = Coo::new(1 << 40, 1 << 40);
        coo.extend([(sch.pack(&[1, 2, 3]), sch.pack(&[4, 5, 6]), 1u64)]);
        let a = coo.build_dcsr(s);
        let ctx = OpCtx::new();
        let _ = rollup_ctx(
            &ctx,
            &sch,
            &a,
            CxPrefix::full_fields(1),
            RollupAxes::Both,
            s,
        );
        let snap = ctx.metrics().snapshot();
        assert_eq!(snap.kernel(Kernel::Rollup).calls, 1);
    }

    #[test]
    #[should_panic(expected = "index space holds 64")]
    fn overwide_schemas_are_rejected() {
        let _ = CxSchema::new(vec![
            CxField::dotted_quad("src"),
            CxField::dotted_quad("dst"),
            CxField::bits("port", 16),
        ]);
    }

    #[test]
    #[should_panic(expected = "prefix keeps")]
    fn overlong_partial_prefixes_are_rejected() {
        let sch = socket();
        let _ = sch.prefix_bits(CxPrefix::partial(1, 17));
    }
}
