//! The §IV semilink identities, executable.
//!
//! A semilink `(𝔸, ⊕, ⊗, ⊕.⊗, 0, 1, 𝕀)` couples the element-wise and
//! array semirings over one value set. §IV derives seven identity
//! families governing how ⊗ and ⊕.⊗ interact through the all-ones array
//! `𝟙` and the identity array `𝕀`. Each is implemented here as a checker
//! that *computes both sides* and compares — used by the property-based
//! suite (`tests/semilink_props.rs`) and the `semilink_identities`
//! example.
//!
//! The paper states these over square arrays in a common key space; the
//! checkers take that key space explicitly.

use hypersparse::Ix;
use semiring::traits::{Semiring, Value};

use crate::assoc::Assoc;
use crate::key::Key;

/// `𝟙`: the all-ones array over `keys × keys`.
pub fn ones_array<K: Key, T: Value, S: Semiring<Value = T>>(keys: &[K], s: S) -> Assoc<K, K, T> {
    Assoc::ones(keys.to_vec(), keys.to_vec(), s)
}

/// `𝕀`: the identity array over `keys`.
pub fn identity_array<K: Key, T: Value, S: Semiring<Value = T>>(
    keys: &[K],
    s: S,
) -> Assoc<K, K, T> {
    Assoc::identity(keys.to_vec(), s)
}

/// §IV identity interplay:
/// `𝟙 ⊗ 𝕀 = 𝕀 ⊗ 𝟙 = 𝕀` and `𝟙 ⊕.⊗ 𝕀 = 𝕀 ⊕.⊗ 𝟙 = 𝟙`.
pub fn check_identity_interplay<K: Key, T: Value, S: Semiring<Value = T>>(
    keys: &[K],
    s: S,
) -> bool {
    let one = ones_array(keys, s);
    let id = identity_array(keys, s);
    one.ewise_mul(&id, s) == id
        && id.ewise_mul(&one, s) == id
        && one.matmul(&id, s) == one
        && id.matmul(&one, s) == one
}

/// `true` if `|A|₀` is a (partial) permutation pattern: at most one entry
/// per row and per column.
pub fn is_permutation_pattern<K1: Key, K2: Key, T: Value>(a: &Assoc<K1, K2, T>) -> bool {
    let d = a.matrix().as_dcsr();
    let mut seen_cols = std::collections::HashSet::new();
    for (_, cols, _) in d.iter_rows() {
        if cols.len() != 1 {
            return false;
        }
        if !seen_cols.insert(cols[0]) {
            return false;
        }
    }
    true
}

/// §IV: if `|A|₀ = ℙ` then `A ⊗ ℙ = ℙ ⊗ A = A` (the pattern acts as an
/// element-wise identity on arrays sharing it). With `ℙ = 𝕀` this is the
/// `A ⊗ 𝕀 = 𝕀 ⊗ A = A` special case.
pub fn check_pattern_is_ewise_identity<K1: Key, K2: Key, T: Value, S: Semiring<Value = T>>(
    a: &Assoc<K1, K2, T>,
    s: S,
) -> bool {
    let p = a.zero_norm(s);
    a.ewise_mul(&p, s) == *a && p.ewise_mul(a, s) == *a
}

/// §IV projection: `C = A ⊕.⊗ 𝟙 ⟹ C(k₁, :) = ⊕_{k₂} A(k₁, k₂)` —
/// every column of `C` equals the row reduction of `A`.
pub fn check_projection_rows<K: Key, T: Value, S: Semiring<Value = T>>(
    a: &Assoc<K, K, T>,
    keys: &[K],
    s: S,
) -> bool {
    let one = ones_array(keys, s);
    let c = a.matmul(&one, s);
    let sums = a.reduce_rows(semiring::traits::AddMonoidOf(s));
    // Every (row, col) of C must equal the row's reduction.
    for k1 in keys {
        let want = sums.iter().find(|(k, _)| k == k1).map(|(_, v)| v.clone());
        for k2 in keys {
            let got = c.get(k1, k2);
            if got != want {
                return false;
            }
        }
    }
    true
}

/// §IV projection, column form: `C = 𝟙 ⊕.⊗ A ⟹ C(:, k₂) = ⊕_{k₁} A(k₁, k₂)`.
pub fn check_projection_cols<K: Key, T: Value, S: Semiring<Value = T>>(
    a: &Assoc<K, K, T>,
    keys: &[K],
    s: S,
) -> bool {
    let one = ones_array(keys, s);
    let c = one.matmul(a, s);
    let sums = a.reduce_cols(semiring::traits::AddMonoidOf(s));
    for k2 in keys {
        let want = sums.iter().find(|(k, _)| k == k2).map(|(_, v)| v.clone());
        for k1 in keys {
            if c.get(k1, k2) != want {
                return false;
            }
        }
    }
    true
}

/// §IV conditional distributivity of ⊕.⊗ over ⊗: if
/// `|A|₀ = |A₁|₀ = |A₂|₀ = ℙ` and `A = A₁ ⊗ A₂`, then
/// `A ⊕.⊗ (B ⊗ C) = (A₁ ⊕.⊗ B) ⊗ (A₂ ⊕.⊗ C)`.
///
/// Returns `None` if the precondition fails (caller supplied non-matching
/// or non-permutation patterns), `Some(verdict)` otherwise.
pub fn check_conditional_distributivity<K: Key, T: Value, S: Semiring<Value = T>>(
    a1: &Assoc<K, K, T>,
    a2: &Assoc<K, K, T>,
    b: &Assoc<K, K, T>,
    c: &Assoc<K, K, T>,
    s: S,
) -> Option<bool> {
    if !is_permutation_pattern(a1)
        || !is_permutation_pattern(a2)
        || a1.zero_norm(s) != a2.zero_norm(s)
    {
        return None;
    }
    let a = a1.ewise_mul(a2, s);
    let lhs = a.matmul(&b.ewise_mul(c, s), s);
    let rhs = a1.matmul(b, s).ewise_mul(&a2.matmul(c, s), s);
    Some(lhs == rhs)
}

/// §IV trivial hybrid associativity, left form: with `A = 𝟙`,
/// `A ⊗ (B ⊕.⊗ C) = (A ⊗ B) ⊕.⊗ C`.
pub fn check_hybrid_assoc_ones<K: Key, T: Value, S: Semiring<Value = T>>(
    b: &Assoc<K, K, T>,
    c: &Assoc<K, K, T>,
    keys: &[K],
    s: S,
) -> bool {
    let a = ones_array(keys, s);
    let lhs = a.ewise_mul(&b.matmul(c, s), s);
    let rhs = a.ewise_mul(b, s).matmul(c, s);
    lhs == rhs
}

/// §IV trivial hybrid associativity, right form: with `C = 𝕀`,
/// `A ⊗ (B ⊕.⊗ C) = (A ⊗ B) ⊕.⊗ C`.
pub fn check_hybrid_assoc_identity<K: Key, T: Value, S: Semiring<Value = T>>(
    a: &Assoc<K, K, T>,
    b: &Assoc<K, K, T>,
    keys: &[K],
    s: S,
) -> bool {
    let c = identity_array(keys, s);
    let lhs = a.ewise_mul(&b.matmul(&c, s), s);
    let rhs = a.ewise_mul(b, s).matmul(&c, s);
    lhs == rhs
}

/// Row keys that actually carry entries (the paper's `row(A)`).
pub fn support_rows<K1: Key, K2: Key, T: Value>(a: &Assoc<K1, K2, T>) -> Vec<K1> {
    let d = a.matrix().as_dcsr();
    d.row_ids()
        .iter()
        .map(|&r| a.row_keys()[r as usize].clone())
        .collect()
}

/// Column keys that actually carry entries (the paper's `col(A)`).
pub fn support_cols<K1: Key, K2: Key, T: Value>(a: &Assoc<K1, K2, T>) -> Vec<K2> {
    let mut cols: Vec<Ix> = a.matrix().as_dcsr().iter().map(|(_, c, _)| c).collect();
    cols.sort_unstable();
    cols.dedup();
    cols.into_iter()
        .map(|c| a.col_keys()[c as usize].clone())
        .collect()
}

fn disjoint<K: Key>(a: &[K], b: &[K]) -> bool {
    crate::key::intersect_dicts(a, b).is_empty()
}

/// §IV disjoint-support annihilation for `A ⊗ (B ⊕.⊗ C)`: if
/// `row(A) ∩ row(B) = ∅` or `col(A) ∩ col(C) = ∅` or
/// `col(B) ∩ row(C) = ∅`, the result is `𝕆`. Returns `None` when no
/// disjointness precondition holds (nothing to check).
pub fn check_annihilation_ewise_first<K: Key, T: Value, S: Semiring<Value = T>>(
    a: &Assoc<K, K, T>,
    b: &Assoc<K, K, T>,
    c: &Assoc<K, K, T>,
    s: S,
) -> Option<bool> {
    let pre = disjoint(&support_rows(a), &support_rows(b))
        || disjoint(&support_cols(a), &support_cols(c))
        || disjoint(&support_cols(b), &support_rows(c));
    if !pre {
        return None;
    }
    Some(a.ewise_mul(&b.matmul(c, s), s).is_empty())
}

/// §IV disjoint-support annihilation for `(A ⊗ B) ⊕.⊗ C`: if
/// `row(A) ∩ row(B) = ∅` or `col(A) ∩ col(B) = ∅` or
/// `col(A) ∩ row(C) = ∅` or `col(B) ∩ row(C) = ∅`, the result is `𝕆`.
pub fn check_annihilation_matmul_last<K: Key, T: Value, S: Semiring<Value = T>>(
    a: &Assoc<K, K, T>,
    b: &Assoc<K, K, T>,
    c: &Assoc<K, K, T>,
    s: S,
) -> Option<bool> {
    let pre = disjoint(&support_rows(a), &support_rows(b))
        || disjoint(&support_cols(a), &support_cols(b))
        || disjoint(&support_cols(a), &support_rows(c))
        || disjoint(&support_cols(b), &support_rows(c));
    if !pre {
        return None;
    }
    Some(a.ewise_mul(b, s).matmul(c, s).is_empty())
}

/// §IV corollary: if `row(A) ∩ row(B) = ∅` or `col(B) ∩ row(C) = ∅`,
/// both groupings vanish and hybrid associativity holds trivially at `𝕆`:
/// `A ⊗ (B ⊕.⊗ C) = (A ⊗ B) ⊕.⊗ C = 𝕆`.
pub fn check_annihilation_corollary<K: Key, T: Value, S: Semiring<Value = T>>(
    a: &Assoc<K, K, T>,
    b: &Assoc<K, K, T>,
    c: &Assoc<K, K, T>,
    s: S,
) -> Option<bool> {
    let pre = disjoint(&support_rows(a), &support_rows(b))
        || disjoint(&support_cols(b), &support_rows(c));
    if !pre {
        return None;
    }
    let lhs = a.ewise_mul(&b.matmul(c, s), s);
    let rhs = a.ewise_mul(b, s).matmul(c, s);
    Some(lhs.is_empty() && rhs.is_empty() && lhs == rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::{MinPlus, PlusTimes};

    fn s() -> PlusTimes<f64> {
        PlusTimes::new()
    }

    fn keys() -> Vec<&'static str> {
        vec!["a", "b", "c", "d"]
    }

    #[test]
    fn identity_interplay_plus_times() {
        assert!(check_identity_interplay(&keys(), s()));
    }

    #[test]
    fn identity_interplay_tropical() {
        assert!(check_identity_interplay(&keys(), MinPlus::<f64>::new()));
    }

    #[test]
    fn permutation_pattern_detection() {
        let p = Assoc::permutation(vec![("a", "c"), ("b", "a")], s());
        assert!(is_permutation_pattern(&p));
        let not_p = Assoc::from_triplets(vec![("a", "b", 1.0), ("a", "c", 1.0)], s());
        assert!(!is_permutation_pattern(&not_p));
        let dup_col = Assoc::from_triplets(vec![("a", "b", 1.0), ("c", "b", 1.0)], s());
        assert!(!is_permutation_pattern(&dup_col));
    }

    #[test]
    fn pattern_acts_as_ewise_identity() {
        let a = Assoc::from_triplets(vec![("a", "c", 2.0), ("b", "a", 3.0)], s());
        assert!(check_pattern_is_ewise_identity(&a, s()));
        // Holds for any array against its own pattern, permutation or not.
        let any = Assoc::from_triplets(vec![("a", "b", 2.0), ("a", "c", 5.0)], s());
        assert!(check_pattern_is_ewise_identity(&any, s()));
    }

    #[test]
    fn projections() {
        let a = Assoc::from_triplets(vec![("a", "b", 2.0), ("a", "c", 3.0), ("d", "a", 4.0)], s());
        assert!(check_projection_rows(&a, &keys(), s()));
        assert!(check_projection_cols(&a, &keys(), s()));
    }

    #[test]
    fn conditional_distributivity_holds_with_permutations() {
        let a1 = Assoc::from_triplets(vec![("a", "b", 2.0), ("b", "c", 3.0)], s());
        let a2 = Assoc::from_triplets(vec![("a", "b", 5.0), ("b", "c", 7.0)], s());
        let b = Assoc::from_triplets(vec![("b", "a", 1.0), ("c", "d", 2.0), ("a", "a", 3.0)], s());
        let c = Assoc::from_triplets(vec![("b", "a", 4.0), ("c", "d", 6.0), ("b", "d", 8.0)], s());
        assert_eq!(
            check_conditional_distributivity(&a1, &a2, &b, &c, s()),
            Some(true)
        );
    }

    #[test]
    fn conditional_distributivity_rejects_bad_precondition() {
        let a1 = Assoc::from_triplets(vec![("a", "b", 2.0), ("a", "c", 3.0)], s()); // not a ℙ
        let a2 = a1.clone();
        let b = Assoc::from_triplets(vec![("b", "a", 1.0)], s());
        assert_eq!(
            check_conditional_distributivity(&a1, &a2, &b, &b, s()),
            None
        );
    }

    #[test]
    fn hybrid_associativity_trivial_cases() {
        let b = Assoc::from_triplets(vec![("a", "b", 2.0), ("c", "d", 3.0)], s());
        let c = Assoc::from_triplets(vec![("b", "c", 4.0), ("d", "a", 5.0)], s());
        assert!(check_hybrid_assoc_ones(&b, &c, &keys(), s()));
        assert!(check_hybrid_assoc_identity(&b, &c, &keys(), s()));
    }

    #[test]
    fn hybrid_associativity_fails_in_general() {
        // Without A = 𝟙 or C = 𝕀 the identity genuinely fails — the
        // semilink is *not* an associative composition.
        // A's pattern matches the *product* B⊕.⊗C but not B itself, so
        // masking before vs after the contraction gives different answers.
        let a = Assoc::from_triplets(vec![("a", "c", 1.0)], s());
        let b = Assoc::from_triplets(vec![("a", "b", 1.0)], s());
        let c = Assoc::from_triplets(vec![("b", "c", 1.0)], s());
        let lhs = a.ewise_mul(&b.matmul(&c, s()), s());
        let rhs = a.ewise_mul(&b, s()).matmul(&c, s());
        assert_eq!(lhs.nnz(), 1);
        assert!(rhs.is_empty());
        assert_ne!(lhs, rhs);
    }

    #[test]
    fn annihilation_identities() {
        // row(A) ∩ row(B) = ∅.
        let a = Assoc::from_triplets(vec![("a", "b", 1.0)], s());
        let b = Assoc::from_triplets(vec![("c", "d", 2.0)], s());
        let c = Assoc::from_triplets(vec![("d", "a", 3.0)], s());
        assert_eq!(check_annihilation_ewise_first(&a, &b, &c, s()), Some(true));
        assert_eq!(check_annihilation_matmul_last(&a, &b, &c, s()), Some(true));
        assert_eq!(check_annihilation_corollary(&a, &b, &c, s()), Some(true));
    }

    #[test]
    fn annihilation_precondition_gate() {
        // Fully overlapping supports: nothing to check.
        let a = Assoc::from_triplets(vec![("a", "a", 1.0)], s());
        assert_eq!(check_annihilation_ewise_first(&a, &a, &a, s()), None);
    }

    #[test]
    fn supports() {
        let a = Assoc::from_triplets(vec![("x", "p", 1.0), ("y", "q", 2.0)], s());
        assert_eq!(support_rows(&a), vec!["x", "y"]);
        assert_eq!(support_cols(&a), vec!["p", "q"]);
    }
}
