//! Key-range and prefix queries — D4M's `A("a,:,b,", :)` row ranges.
//!
//! Because dictionaries are sorted, any contiguous key range is a binary
//! search plus a slice; string prefixes (`"src|*"`) are the half-open
//! range `[prefix, prefix ⊕ MAX)`. These are the access patterns that make
//! the exploded database schema efficient.

use std::ops::Bound;

use semiring::traits::{Semiring, Value};

use crate::assoc::Assoc;
use crate::key::Key;

/// Keys of a sorted dictionary falling in `range`.
pub fn keys_in_range<K: Key, R: std::ops::RangeBounds<K>>(dict: &[K], range: R) -> &[K] {
    let lo = match range.start_bound() {
        Bound::Unbounded => 0,
        Bound::Included(k) => dict.partition_point(|x| x < k),
        Bound::Excluded(k) => dict.partition_point(|x| x <= k),
    };
    let hi = match range.end_bound() {
        Bound::Unbounded => dict.len(),
        Bound::Included(k) => dict.partition_point(|x| x <= k),
        Bound::Excluded(k) => dict.partition_point(|x| x < k),
    };
    &dict[lo..hi.max(lo)]
}

/// String keys starting with `prefix`.
pub fn keys_with_prefix<'d>(dict: &'d [String], prefix: &str) -> &'d [String] {
    let lo = dict.partition_point(|x| x.as_str() < prefix);
    let hi = dict[lo..].partition_point(|x| x.starts_with(prefix)) + lo;
    &dict[lo..hi]
}

/// `A(row_range, :)` — subarray of the rows whose keys fall in `range`.
pub fn extract_row_range<K1, K2, T, S, R>(a: &Assoc<K1, K2, T>, range: R, s: S) -> Assoc<K1, K2, T>
where
    K1: Key,
    K2: Key,
    T: Value,
    S: Semiring<Value = T>,
    R: std::ops::RangeBounds<K1>,
{
    let rows = keys_in_range(a.row_keys(), range).to_vec();
    a.extract(rows, a.col_keys().to_vec(), s)
}

/// `A(:, col_range)` — subarray of the columns whose keys fall in `range`.
pub fn extract_col_range<K1, K2, T, S, R>(a: &Assoc<K1, K2, T>, range: R, s: S) -> Assoc<K1, K2, T>
where
    K1: Key,
    K2: Key,
    T: Value,
    S: Semiring<Value = T>,
    R: std::ops::RangeBounds<K2>,
{
    let cols = keys_in_range(a.col_keys(), range).to_vec();
    a.extract(a.row_keys().to_vec(), cols, s)
}

/// `A("prefix*", :)` for string row keys.
pub fn extract_row_prefix<K2, T, S>(
    a: &Assoc<String, K2, T>,
    prefix: &str,
    s: S,
) -> Assoc<String, K2, T>
where
    K2: Key,
    T: Value,
    S: Semiring<Value = T>,
{
    let rows = keys_with_prefix(a.row_keys(), prefix).to_vec();
    a.extract(rows, a.col_keys().to_vec(), s)
}

/// `A(:, "prefix*")` for string column keys.
pub fn extract_col_prefix<K1, T, S>(
    a: &Assoc<K1, String, T>,
    prefix: &str,
    s: S,
) -> Assoc<K1, String, T>
where
    K1: Key,
    T: Value,
    S: Semiring<Value = T>,
{
    let cols = keys_with_prefix(a.col_keys(), prefix).to_vec();
    a.extract(a.row_keys().to_vec(), cols, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::PlusTimes;

    fn s() -> PlusTimes<f64> {
        PlusTimes::new()
    }

    fn table() -> Assoc<String, String, f64> {
        Assoc::from_triplets(
            vec![
                ("r01".into(), "dst|b".into(), 1.0),
                ("r02".into(), "src|a".into(), 1.0),
                ("r03".into(), "src|c".into(), 1.0),
                ("r10".into(), "port|80".into(), 1.0),
            ],
            s(),
        )
    }

    #[test]
    fn range_selection_on_dicts() {
        let dict: Vec<String> = ["a", "b", "c", "d"].map(String::from).to_vec();
        assert_eq!(
            keys_in_range(&dict, "b".to_string().."d".to_string()),
            &["b".to_string(), "c".to_string()][..]
        );
        assert_eq!(keys_in_range(&dict, ..), &dict[..]);
        assert_eq!(
            keys_in_range(&dict, "b".to_string()..="d".to_string()).len(),
            3
        );
        assert!(keys_in_range(&dict, "x".to_string()..).is_empty());
    }

    #[test]
    fn prefix_selection() {
        let a = table();
        let cols = keys_with_prefix(a.col_keys(), "src|");
        assert_eq!(cols, &["src|a".to_string(), "src|c".to_string()][..]);
        assert!(keys_with_prefix(a.col_keys(), "zzz|").is_empty());
    }

    #[test]
    fn row_range_extraction() {
        let a = table();
        let sub = extract_row_range(&a, "r01".to_string()..="r03".to_string(), s());
        assert_eq!(sub.nnz(), 3);
        assert!(sub
            .get(&"r10".to_string(), &"port|80".to_string())
            .is_none());
    }

    #[test]
    fn col_prefix_extraction_is_field_scan() {
        let a = table();
        let srcs = extract_col_prefix(&a, "src|", s());
        assert_eq!(srcs.nnz(), 2);
        assert_eq!(srcs.col_keys().len(), 2);
    }

    #[test]
    fn col_range_extraction() {
        let a = table();
        let sub = extract_col_range(&a, "port|".to_string().."src|".to_string(), s());
        assert_eq!(sub.nnz(), 1); // only port|80
    }
}
