//! CSV import/export — the "plug-in replacement for spreadsheets".
//!
//! Two interchange shapes:
//!
//! * **spreadsheet** — first row is the column-key header, first field of
//!   each row is the row key, empty cells are absent entries; the format
//!   a spreadsheet user would recognize as *the same object*;
//! * **triples** — `row,col,value` lines, the streaming/database shape.
//!
//! Round trips are exact for string-keyed `f64` arrays (values rendered
//! via Rust's shortest-round-trip float formatting).

use semiring::traits::Semiring;

use crate::assoc::Assoc;

/// Render as spreadsheet-shaped CSV (header + one line per row key).
pub fn to_csv_spreadsheet(a: &Assoc<String, String, f64>) -> String {
    let mut out = String::new();
    out.push_str("");
    for c in a.col_keys() {
        out.push(',');
        out.push_str(&escape(c));
    }
    out.push('\n');
    for r in a.row_keys() {
        out.push_str(&escape(r));
        let row: std::collections::HashMap<String, f64> = a.row(r).into_iter().collect();
        for c in a.col_keys() {
            out.push(',');
            if let Some(v) = row.get(c) {
                out.push_str(&format!("{v}"));
            }
        }
        out.push('\n');
    }
    out
}

/// Parse spreadsheet-shaped CSV.
pub fn from_csv_spreadsheet<S: Semiring<Value = f64>>(
    text: &str,
    s: S,
) -> Result<Assoc<String, String, f64>, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty csv")?;
    let cols: Vec<String> = split(header)?.into_iter().skip(1).collect();
    let mut trips = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields = split(line)?;
        let row = fields
            .first()
            .ok_or_else(|| format!("line {lineno}: no row key"))?;
        if fields.len() > cols.len() + 1 {
            return Err(format!("line {lineno}: more cells than header columns"));
        }
        for (c, cell) in cols.iter().zip(fields.iter().skip(1)) {
            if cell.is_empty() {
                continue;
            }
            let v: f64 = cell
                .parse()
                .map_err(|e| format!("line {lineno}, col {c}: {e}"))?;
            trips.push((row.clone(), c.clone(), v));
        }
    }
    Ok(Assoc::from_triplets(trips, s))
}

/// Render as triple-shaped CSV (`row,col,value` per entry).
pub fn to_csv_triples(a: &Assoc<String, String, f64>) -> String {
    let mut out = String::from("row,col,value\n");
    for (r, c, v) in a.to_triplets() {
        out.push_str(&format!("{},{},{v}\n", escape(&r), escape(&c)));
    }
    out
}

/// Parse triple-shaped CSV (with or without the canonical header).
pub fn from_csv_triples<S: Semiring<Value = f64>>(
    text: &str,
    s: S,
) -> Result<Assoc<String, String, f64>, String> {
    let mut trips = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() || (lineno == 0 && line == "row,col,value") {
            continue;
        }
        let fields = split(line)?;
        if fields.len() != 3 {
            return Err(format!("line {lineno}: expected 3 fields"));
        }
        let v: f64 = fields[2]
            .parse()
            .map_err(|e| format!("line {lineno}: {e}"))?;
        trips.push((fields[0].clone(), fields[1].clone(), v));
    }
    Ok(Assoc::from_triplets(trips, s))
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

fn split(line: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(ch) = chars.next() {
        if quoted {
            match ch {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    cur.push('"');
                }
                '"' => quoted = false,
                c => cur.push(c),
            }
        } else {
            match ch {
                '"' if cur.is_empty() => quoted = true,
                ',' => out.push(std::mem::take(&mut cur)),
                c => cur.push(c),
            }
        }
    }
    if quoted {
        return Err("unterminated quote".into());
    }
    out.push(cur);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::PlusTimes;

    fn s() -> PlusTimes<f64> {
        PlusTimes::new()
    }

    fn sample() -> Assoc<String, String, f64> {
        Assoc::from_triplets(
            vec![
                ("alice".into(), "apples".into(), 2.5),
                ("alice".into(), "pears".into(), 1.0),
                ("bob".into(), "apples".into(), 5.0),
            ],
            s(),
        )
    }

    #[test]
    fn spreadsheet_round_trip() {
        let a = sample();
        let text = to_csv_spreadsheet(&a);
        assert!(text.starts_with(",apples,pears\n"));
        let b = from_csv_spreadsheet(&text, s()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn triples_round_trip() {
        let a = sample();
        let b = from_csv_triples(&to_csv_triples(&a), s()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_cells_are_absent_entries() {
        let text = ",x,y\nr1,1.5,\nr2,,2.5\n";
        let a = from_csv_spreadsheet(text, s()).unwrap();
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(&"r1".into(), &"x".into()), Some(1.5));
        assert_eq!(a.get(&"r1".into(), &"y".into()), None);
    }

    #[test]
    fn quoting_survives_round_trip() {
        let a = Assoc::from_triplets(
            vec![("has,comma".to_string(), "has\"quote".to_string(), 1.0)],
            s(),
        );
        let b = from_csv_spreadsheet(&to_csv_spreadsheet(&a), s()).unwrap();
        assert_eq!(a, b);
        let c = from_csv_triples(&to_csv_triples(&a), s()).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_csv_spreadsheet("", s()).is_err());
        assert!(from_csv_spreadsheet(",x\nr1,notanumber\n", s()).is_err());
        assert!(from_csv_triples("a,b\n", s()).is_err());
        assert!(from_csv_triples("a,b,1.0,extra\n", s()).is_err());
        assert!(from_csv_spreadsheet(",x\n\"unterminated,1\n", s()).is_err());
    }

    #[test]
    fn high_precision_values_round_trip() {
        let a = Assoc::from_triplets(
            vec![("r".to_string(), "c".to_string(), std::f64::consts::PI)],
            s(),
        );
        let b = from_csv_triples(&to_csv_triples(&a), s()).unwrap();
        assert_eq!(a, b); // shortest round-trip float formatting is exact
    }
}
