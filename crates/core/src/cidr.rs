//! Hierarchical CIDR keys — IPv4 addresses as a sortable, projectable
//! key space.
//!
//! The paper's headline deployment keys traffic matrices by IP address,
//! and the power of the associative-array representation is that the
//! *hierarchy* of the address space (host ⊂ /24 ⊂ /16 ⊂ /8) becomes
//! ordinary key algebra. Since PR 10 this module is the one-component
//! instance of the general complex-index layer ([`crate::cxkey`]): the
//! schema is a single dotted-quad component, and every key operation
//! delegates to [`CxSchema`] against it. Two encodings, one per layer of
//! the stack:
//!
//! * **String keys** for [`Assoc`]: zero-padded dotted quads
//!   (`"010.002.003.004"`) so lexicographic order equals numeric order
//!   and a `/p` prefix is literally a string prefix — D4M-style
//!   `starts_with` range extraction works unmodified. [`cidr_key`]
//!   appends an explicit `/p` suffix to rolled-up keys
//!   (`"010.002.000.000/16"`) so host rows and aggregate rows can never
//!   collide in one dictionary.
//! * **Numeric keys** for [`Dcsr`]: the address in the low 32 bits of a
//!   `u64` index. [`mask_ix`] zeroes host bits — a *monotone
//!   non-decreasing* map, so masking a sorted triple stream keeps it
//!   sorted and the rollup kernels run in `O(nnz)` with a single
//!   duplicate-⊕-merge pass, recorded under
//!   [`hypersparse::metrics::Kernel::Rollup`].
//!
//! Both projections are idempotent — rolling up to `/p` twice is the
//! identity the second time — and both compose downward
//! (`/8 ∘ /16 = /8`), which is what makes multi-resolution traffic
//! analysis a chain of cheap re-keyings rather than re-ingests.

use std::sync::OnceLock;

use hypersparse::ctx::{with_default_ctx, OpCtx};
use hypersparse::dcsr::Dcsr;
use hypersparse::Ix;
use semiring::traits::{Semiring, Value};

use crate::assoc::Assoc;
use crate::cxkey::{self, CxField, CxPrefix, CxSchema};

pub use crate::cxkey::RollupAxes;

/// A CIDR prefix length. `/0` through `/32` cover the full range:
/// `/32` is the identity (host granularity), `/8`–`/24` are the rollup
/// resolutions named in the deployment papers, `/0` folds the whole
/// address space into one block.
pub type PrefixLen = u8;

/// The one-component schema CIDR keys live in: a single 32-bit
/// dotted-quad field named `ip`. Every function in this module is the
/// [`crate::cxkey`] operation against this schema at
/// `CxPrefix::partial(0, p)`.
pub fn ip_schema() -> &'static CxSchema {
    static SCHEMA: OnceLock<CxSchema> = OnceLock::new();
    SCHEMA.get_or_init(|| CxSchema::new(vec![CxField::dotted_quad("ip")]))
}

#[inline]
fn prefix_of(prefix: PrefixLen) -> CxPrefix {
    assert!(prefix <= 32, "IPv4 prefix length must be ≤ 32");
    CxPrefix::partial(0, u32::from(prefix))
}

/// The netmask for a prefix length: high `p` bits set.
#[inline]
pub fn netmask(prefix: PrefixLen) -> u32 {
    assert!(prefix <= 32, "IPv4 prefix length must be ≤ 32");
    if prefix == 0 {
        0
    } else {
        u32::MAX << (32 - prefix)
    }
}

/// Zero the host bits of an address: `10.2.3.4` at `/16` → `10.2.0.0`.
#[inline]
pub fn mask_ip(ip: u32, prefix: PrefixLen) -> u32 {
    ip & netmask(prefix)
}

/// Zero the host bits of a matrix index. Addresses live in the low 32
/// bits of the `u64` key space; any high bits (tenant / protocol tags)
/// pass through untouched. Monotone non-decreasing in `ix`, which is
/// what lets the rollup kernels preserve sortedness.
#[inline]
pub fn mask_ix(ix: Ix, prefix: PrefixLen) -> Ix {
    ip_schema().mask_ix(ix, prefix_of(prefix))
}

/// Pack four octets into an address, `a` most significant.
#[inline]
pub fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
    u32::from_be_bytes([a, b, c, d])
}

/// The zero-padded dotted-quad key for an address:
/// `ip_key(0x0A020304)` → `"010.002.003.004"`. Padding makes
/// lexicographic string order agree with numeric address order, so the
/// key dictionary of an [`Assoc`] sorts addresses correctly and CIDR
/// blocks are contiguous key ranges.
pub fn ip_key(ip: u32) -> String {
    ip_schema().key(&[u64::from(ip)])
}

/// The key for a CIDR block: the masked address plus an explicit
/// `/prefix` suffix — `cidr_key(0x0A020304, 16)` →
/// `"010.002.000.000/16"`. The suffix keeps aggregate keys disjoint
/// from host keys (`/32` included, for uniformity of rolled-up arrays).
pub fn cidr_key(ip: u32, prefix: PrefixLen) -> String {
    ip_schema().prefix_key(&[u64::from(ip)], prefix_of(prefix))
}

/// Parse a key produced by [`ip_key`] or [`cidr_key`] back to the
/// address. Unpadded quads (`"10.2.3.4"`) parse too. An optional
/// `/prefix` suffix is validated — it must be a single plain-decimal
/// segment ≤ 32 — but not applied to the returned address. Returns
/// `None` for malformed input, including out-of-range prefixes
/// (`"1.2.3.4/99"`) and extra `/` segments (`"1.2.3.4/16/8"`).
pub fn parse_ip_key(key: &str) -> Option<u32> {
    let parts = ip_schema().parse_key(key)?;
    Some(parts[0] as u32)
}

/// Project the row keys of an IP-keyed associative array onto a CIDR
/// prefix. Rows falling in the same block ⊕-combine (the
/// [`Assoc::map_row_keys`] collision semantics), so the result is the
/// traffic matrix at `/prefix` resolution. Idempotent: projecting an
/// already-projected array at the same (or coarser→same) prefix is the
/// identity on values.
pub fn project_rows<K2, T, S>(
    a: &Assoc<String, K2, T>,
    prefix: PrefixLen,
    s: S,
) -> Assoc<String, K2, T>
where
    K2: crate::key::Key,
    T: Value,
    S: Semiring<Value = T>,
{
    cxkey::project_rows(ip_schema(), a, prefix_of(prefix), s)
}

/// Project the column keys onto a CIDR prefix; see [`project_rows`].
pub fn project_cols<K1, T, S>(
    a: &Assoc<K1, String, T>,
    prefix: PrefixLen,
    s: S,
) -> Assoc<K1, String, T>
where
    K1: crate::key::Key,
    T: Value,
    S: Semiring<Value = T>,
{
    cxkey::project_cols(ip_schema(), a, prefix_of(prefix), s)
}

/// Project both key dimensions onto a CIDR prefix: the full
/// block-to-block rollup of a traffic matrix.
pub fn project<T, S>(
    a: &Assoc<String, String, T>,
    prefix: PrefixLen,
    s: S,
) -> Assoc<String, String, T>
where
    T: Value,
    S: Semiring<Value = T> + Copy,
{
    cxkey::project(ip_schema(), a, prefix_of(prefix), s)
}

/// Roll a `Dcsr` up to CIDR-block resolution: mask the selected key
/// dimensions with [`mask_ix`] and ⊕-merge entries that land on the
/// same cell. `O(nnz)` — masking is monotone so the triple stream stays
/// sorted and the COO build's duplicate merge is a single pass. Records
/// under [`hypersparse::metrics::Kernel::Rollup`].
pub fn rollup_ctx<T, S>(
    ctx: &OpCtx,
    a: &Dcsr<T>,
    prefix: PrefixLen,
    axes: RollupAxes,
    s: S,
) -> Dcsr<T>
where
    T: Value,
    S: Semiring<Value = T>,
{
    cxkey::rollup_ctx(ctx, ip_schema(), a, prefix_of(prefix), axes, s)
}

/// [`rollup_ctx`] through the thread-local default context.
pub fn rollup<T, S>(a: &Dcsr<T>, prefix: PrefixLen, axes: RollupAxes, s: S) -> Dcsr<T>
where
    T: Value,
    S: Semiring<Value = T>,
{
    with_default_ctx(|ctx| rollup_ctx(ctx, a, prefix, axes, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypersparse::coo::Coo;
    use hypersparse::metrics::Kernel;
    use semiring::PlusTimes;

    #[test]
    fn keys_sort_numerically_and_round_trip() {
        let addrs = [
            ip(10, 2, 3, 4),
            ip(9, 255, 0, 1),
            ip(192, 168, 1, 1),
            ip(10, 2, 3, 200),
        ];
        let mut keys: Vec<String> = addrs.iter().map(|&a| ip_key(a)).collect();
        keys.sort();
        let mut sorted = addrs.to_vec();
        sorted.sort();
        assert_eq!(keys, sorted.iter().map(|&a| ip_key(a)).collect::<Vec<_>>());
        for &a in &addrs {
            assert_eq!(parse_ip_key(&ip_key(a)), Some(a));
            assert_eq!(parse_ip_key(&cidr_key(a, 16)), Some(mask_ip(a, 16)));
        }
        assert_eq!(parse_ip_key("10.2.3.4"), Some(ip(10, 2, 3, 4)));
        assert_eq!(parse_ip_key("10.2.3"), None);
        assert_eq!(parse_ip_key("10.2.3.4.5"), None);
        assert_eq!(parse_ip_key("not-an-ip"), None);
    }

    #[test]
    fn malformed_prefix_suffixes_are_rejected() {
        // Regression: these parsed before the suffix was validated.
        assert_eq!(parse_ip_key("1.2.3.4/99"), None);
        assert_eq!(parse_ip_key("1.2.3.4/16/8"), None);
        // Edges of the valid range still parse; junk suffixes don't.
        assert_eq!(parse_ip_key("1.2.3.4/0"), Some(ip(1, 2, 3, 4)));
        assert_eq!(parse_ip_key("1.2.3.4/32"), Some(ip(1, 2, 3, 4)));
        assert_eq!(parse_ip_key("1.2.3.4/33"), None);
        assert_eq!(parse_ip_key("1.2.3.4/"), None);
        assert_eq!(parse_ip_key("1.2.3.4/+8"), None);
        assert_eq!(parse_ip_key("1.2.3.4/p"), None);
        assert_eq!(parse_ip_key("1.2.3.400"), None);
    }

    #[test]
    fn masking_is_monotone_and_composes_downward() {
        assert_eq!(mask_ip(ip(10, 2, 3, 4), 24), ip(10, 2, 3, 0));
        assert_eq!(mask_ip(ip(10, 2, 3, 4), 8), ip(10, 0, 0, 0));
        assert_eq!(mask_ip(ip(10, 2, 3, 4), 32), ip(10, 2, 3, 4));
        assert_eq!(mask_ip(ip(10, 2, 3, 4), 0), 0);
        // /8 ∘ /16 = /8, and monotonicity over a sorted sample.
        let a = ip(10, 2, 3, 4);
        assert_eq!(mask_ip(mask_ip(a, 16), 8), mask_ip(a, 8));
        let mut prev = 0u64;
        for raw in [0u64, 5, 1 << 10, 0xFFFF, 0xABCD_1234, u32::MAX as u64] {
            assert!(mask_ix(raw, 16) >= prev);
            prev = mask_ix(raw, 16);
        }
        // High tag bits survive masking.
        let tagged = (7u64 << 32) | u64::from(ip(10, 2, 3, 4));
        assert_eq!(tagged & !0xFFFF_FFFF, mask_ix(tagged, 8) & !0xFFFF_FFFF);
    }

    #[test]
    fn mask_ix_agrees_with_mask_ip_at_every_prefix() {
        // The delegation to cxkey must reproduce the specialized bit
        // math bit-for-bit, /0 and /32 included.
        for prefix in 0..=32u8 {
            for raw in [0u32, 1, ip(10, 2, 3, 4), ip(255, 255, 255, 255)] {
                assert_eq!(
                    mask_ix(u64::from(raw), prefix),
                    u64::from(mask_ip(raw, prefix)),
                    "/{prefix} on {raw:#x}"
                );
            }
        }
    }

    #[test]
    fn assoc_projection_aggregates_and_is_idempotent() {
        let s = PlusTimes::<f64>::new();
        let a = Assoc::from_triplets(
            vec![
                (ip_key(ip(10, 2, 3, 4)), ip_key(ip(192, 168, 0, 1)), 2.0),
                (ip_key(ip(10, 2, 9, 9)), ip_key(ip(192, 168, 0, 1)), 3.0),
                (ip_key(ip(11, 0, 0, 1)), ip_key(ip(192, 168, 0, 2)), 1.0),
            ],
            s,
        );
        let p = project(&a, 16, s);
        // The two 10.2.*.* sources merged into one /16 block row.
        assert_eq!(
            p.get(
                &cidr_key(ip(10, 2, 0, 0), 16),
                &cidr_key(ip(192, 168, 0, 0), 16)
            ),
            Some(5.0)
        );
        assert_eq!(p.nnz(), 2);
        // Idempotence: projecting again at /16 changes nothing.
        assert_eq!(project(&p, 16, s), p);
    }

    #[test]
    fn dcsr_rollup_merges_blocks_in_place() {
        let s = PlusTimes::<f64>::new();
        let mut coo = Coo::new(1 << 32, 1 << 32);
        coo.extend([
            (
                u64::from(ip(10, 2, 3, 4)),
                u64::from(ip(192, 168, 0, 1)),
                2.0,
            ),
            (
                u64::from(ip(10, 2, 9, 9)),
                u64::from(ip(192, 168, 0, 1)),
                3.0,
            ),
            (
                u64::from(ip(11, 0, 0, 1)),
                u64::from(ip(192, 168, 0, 2)),
                1.0,
            ),
        ]);
        let a = coo.build_dcsr(s);
        let r = rollup(&a, 16, RollupAxes::Both, s);
        assert_eq!(r.nnz(), 2);
        assert_eq!(
            r.get(u64::from(ip(10, 2, 0, 0)), u64::from(ip(192, 168, 0, 0)))
                .copied(),
            Some(5.0)
        );
        // Idempotent on the Dcsr layer too.
        let rr = rollup(&r, 16, RollupAxes::Both, s);
        assert_eq!(rr.nnz(), r.nnz());
        assert!(rr.iter().eq(r.iter()));

        // Rows-only rollup leaves destinations at host granularity.
        let rows = rollup(&a, 16, RollupAxes::Rows, s);
        assert_eq!(
            rows.get(u64::from(ip(10, 2, 0, 0)), u64::from(ip(192, 168, 0, 1)))
                .copied(),
            Some(5.0)
        );
    }

    #[test]
    fn slash_zero_folds_everything_and_stays_idempotent() {
        // The /0 path end-to-end: netmask → mask_ix → rollup → project.
        assert_eq!(netmask(0), 0);
        assert_eq!(mask_ix(u64::from(ip(203, 0, 113, 9)), 0), 0);
        assert_eq!(cidr_key(ip(203, 0, 113, 9), 0), "000.000.000.000/0");
        assert_eq!(parse_ip_key("000.000.000.000/0"), Some(0));

        let s = PlusTimes::<u64>::new();
        let mut coo = Coo::new(1 << 32, 1 << 32);
        coo.extend([
            (u64::from(ip(10, 2, 3, 4)), u64::from(ip(192, 168, 0, 1)), 2),
            (u64::from(ip(11, 0, 0, 1)), u64::from(ip(8, 8, 8, 8)), 3),
            (u64::from(ip(255, 255, 255, 255)), 0, 5),
        ]);
        let a = coo.build_dcsr(s);
        // One row, one column, one cell holding the whole key space.
        let r = rollup(&a, 0, RollupAxes::Both, s);
        assert_eq!(r.nnz(), 1);
        assert_eq!(r.get(0, 0).copied(), Some(10));
        let rr = rollup(&r, 0, RollupAxes::Both, s);
        assert!(rr.iter().eq(r.iter()), "/0 rollup must be idempotent");

        // String layer: every row folds into the single /0 block.
        let assoc = Assoc::from_triplets(
            vec![
                (ip_key(ip(10, 2, 3, 4)), ip_key(ip(192, 168, 0, 1)), 2u64),
                (ip_key(ip(11, 0, 0, 1)), ip_key(ip(8, 8, 8, 8)), 3),
            ],
            s,
        );
        let p = project(&assoc, 0, s);
        assert_eq!(p.nnz(), 1);
        assert_eq!(
            p.get(
                &"000.000.000.000/0".to_string(),
                &"000.000.000.000/0".to_string()
            ),
            Some(5)
        );
        assert_eq!(project(&p, 0, s), p, "/0 projection must be idempotent");
    }

    #[test]
    fn rollup_records_kernel_metrics() {
        let s = PlusTimes::<f64>::new();
        let ctx = OpCtx::new();
        let mut coo = Coo::new(1 << 32, 1 << 32);
        coo.extend([(u64::from(ip(10, 0, 0, 1)), u64::from(ip(10, 0, 0, 2)), 1.0)]);
        let a = coo.build_dcsr(s);
        let _ = rollup_ctx(&ctx, &a, 8, RollupAxes::Both, s);
        let snap = ctx.metrics().snapshot();
        assert_eq!(snap.kernel(Kernel::Rollup).calls, 1);
        assert_eq!(snap.kernel(Kernel::Rollup).nnz_in, 1);
    }
}
