//! Hierarchical CIDR keys — IPv4 addresses as a sortable, projectable
//! key space.
//!
//! The paper's headline deployment keys traffic matrices by IP address,
//! and the power of the associative-array representation is that the
//! *hierarchy* of the address space (host ⊂ /24 ⊂ /16 ⊂ /8) becomes
//! ordinary key algebra. Two encodings are provided, one per layer of
//! the stack:
//!
//! * **String keys** for [`Assoc`]: zero-padded dotted quads
//!   (`"010.002.003.004"`) so lexicographic order equals numeric order
//!   and a `/p` prefix is literally a string prefix — D4M-style
//!   `starts_with` range extraction works unmodified. [`cidr_key`]
//!   appends an explicit `/p` suffix to rolled-up keys
//!   (`"010.002.000.000/16"`) so host rows and aggregate rows can never
//!   collide in one dictionary.
//! * **Numeric keys** for [`Dcsr`]: the address in the low 32 bits of a
//!   `u64` index. [`mask_ix`] zeroes host bits — a *monotone
//!   non-decreasing* map, so masking a sorted triple stream keeps it
//!   sorted and the rollup kernels run in `O(nnz)` with a single
//!   duplicate-⊕-merge pass, recorded under [`Kernel::Rollup`].
//!
//! Both projections are idempotent — rolling up to `/p` twice is the
//! identity the second time — and both compose downward
//! (`/8 ∘ /16 = /8`), which is what makes multi-resolution traffic
//! analysis a chain of cheap re-keyings rather than re-ingests.

use std::time::Instant;

use hypersparse::coo::Coo;
use hypersparse::ctx::{with_default_ctx, OpCtx};
use hypersparse::dcsr::Dcsr;
use hypersparse::metrics::Kernel;
use hypersparse::Ix;
use semiring::traits::{Semiring, Value};

use crate::assoc::Assoc;

/// A CIDR prefix length. `/8` through `/32` cover the useful range:
/// `/32` is the identity (host granularity), `/8`–`/24` are the rollup
/// resolutions named in the deployment papers.
pub type PrefixLen = u8;

/// The netmask for a prefix length: high `p` bits set.
#[inline]
pub fn netmask(prefix: PrefixLen) -> u32 {
    assert!(prefix <= 32, "IPv4 prefix length must be ≤ 32");
    if prefix == 0 {
        0
    } else {
        u32::MAX << (32 - prefix)
    }
}

/// Zero the host bits of an address: `10.2.3.4` at `/16` → `10.2.0.0`.
#[inline]
pub fn mask_ip(ip: u32, prefix: PrefixLen) -> u32 {
    ip & netmask(prefix)
}

/// Zero the host bits of a matrix index. Addresses live in the low 32
/// bits of the `u64` key space; any high bits (tenant / protocol tags)
/// pass through untouched. Monotone non-decreasing in `ix`, which is
/// what lets the rollup kernels preserve sortedness.
#[inline]
pub fn mask_ix(ix: Ix, prefix: PrefixLen) -> Ix {
    (ix & !0xFFFF_FFFF) | u64::from(mask_ip(ix as u32, prefix))
}

/// Pack four octets into an address, `a` most significant.
#[inline]
pub fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
    u32::from_be_bytes([a, b, c, d])
}

/// The zero-padded dotted-quad key for an address:
/// `ip_key(0x0A020304)` → `"010.002.003.004"`. Padding makes
/// lexicographic string order agree with numeric address order, so the
/// key dictionary of an [`Assoc`] sorts addresses correctly and CIDR
/// blocks are contiguous key ranges.
pub fn ip_key(ip: u32) -> String {
    let [a, b, c, d] = ip.to_be_bytes();
    format!("{a:03}.{b:03}.{c:03}.{d:03}")
}

/// The key for a CIDR block: the masked address plus an explicit
/// `/prefix` suffix — `cidr_key(0x0A020304, 16)` →
/// `"010.002.000.000/16"`. The suffix keeps aggregate keys disjoint
/// from host keys (`/32` included, for uniformity of rolled-up arrays).
pub fn cidr_key(ip: u32, prefix: PrefixLen) -> String {
    format!("{}/{prefix}", ip_key(mask_ip(ip, prefix)))
}

/// Parse a key produced by [`ip_key`] or [`cidr_key`] (an optional
/// `/prefix` suffix is accepted and ignored) back to the address.
/// Unpadded quads (`"10.2.3.4"`) parse too. Returns `None` for
/// malformed input.
pub fn parse_ip_key(key: &str) -> Option<u32> {
    let quad = key.split('/').next()?;
    let mut octets = [0u8; 4];
    let mut parts = quad.split('.');
    for slot in &mut octets {
        *slot = parts.next()?.parse().ok()?;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(u32::from_be_bytes(octets))
}

/// Project the row keys of an IP-keyed associative array onto a CIDR
/// prefix. Rows falling in the same block ⊕-combine (the
/// [`Assoc::map_row_keys`] collision semantics), so the result is the
/// traffic matrix at `/prefix` resolution. Idempotent: projecting an
/// already-projected array at the same (or coarser→same) prefix is the
/// identity on values.
pub fn project_rows<K2, T, S>(
    a: &Assoc<String, K2, T>,
    prefix: PrefixLen,
    s: S,
) -> Assoc<String, K2, T>
where
    K2: crate::key::Key,
    T: Value,
    S: Semiring<Value = T>,
{
    a.map_row_keys(
        |k| parse_ip_key(k).map_or_else(|| k.clone(), |ip| cidr_key(ip, prefix)),
        s,
    )
}

/// Project the column keys onto a CIDR prefix; see [`project_rows`].
pub fn project_cols<K1, T, S>(
    a: &Assoc<K1, String, T>,
    prefix: PrefixLen,
    s: S,
) -> Assoc<K1, String, T>
where
    K1: crate::key::Key,
    T: Value,
    S: Semiring<Value = T>,
{
    a.map_col_keys(
        |k| parse_ip_key(k).map_or_else(|| k.clone(), |ip| cidr_key(ip, prefix)),
        s,
    )
}

/// Project both key dimensions onto a CIDR prefix: the full
/// block-to-block rollup of a traffic matrix.
pub fn project<T, S>(
    a: &Assoc<String, String, T>,
    prefix: PrefixLen,
    s: S,
) -> Assoc<String, String, T>
where
    T: Value,
    S: Semiring<Value = T> + Copy,
{
    project_cols(&project_rows(a, prefix, s), prefix, s)
}

/// Which dimensions a [`rollup_ctx`] collapses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RollupAxes {
    /// Mask row keys only (sources → blocks).
    Rows,
    /// Mask column keys only (destinations → blocks).
    Cols,
    /// Mask both (block-to-block traffic matrix).
    Both,
}

/// Roll a `Dcsr` up to CIDR-block resolution: mask the selected key
/// dimensions with [`mask_ix`] and ⊕-merge entries that land on the
/// same cell. `O(nnz)` — masking is monotone so the triple stream stays
/// sorted and the COO build's duplicate merge is a single pass. Records
/// under [`Kernel::Rollup`].
pub fn rollup_ctx<T, S>(
    ctx: &OpCtx,
    a: &Dcsr<T>,
    prefix: PrefixLen,
    axes: RollupAxes,
    s: S,
) -> Dcsr<T>
where
    T: Value,
    S: Semiring<Value = T>,
{
    let _span = ctx.kernel_span(Kernel::Rollup, || {
        format!("/{prefix} {axes:?} over {} nnz", a.nnz())
    });
    let start = Instant::now();
    let (mask_r, mask_c) = match axes {
        RollupAxes::Rows => (true, false),
        RollupAxes::Cols => (false, true),
        RollupAxes::Both => (true, true),
    };
    let mut coo = Coo::new(a.nrows(), a.ncols());
    coo.extend(a.iter().map(|(r, c, v)| {
        (
            if mask_r { mask_ix(r, prefix) } else { r },
            if mask_c { mask_ix(c, prefix) } else { c },
            v.clone(),
        )
    }));
    let out = coo.build_dcsr(s);
    ctx.metrics().record(
        Kernel::Rollup,
        start.elapsed(),
        a.nnz() as u64,
        out.nnz() as u64,
        a.nnz() as u64,
        (a.bytes() + out.bytes()) as u64,
    );
    out
}

/// [`rollup_ctx`] through the thread-local default context.
pub fn rollup<T, S>(a: &Dcsr<T>, prefix: PrefixLen, axes: RollupAxes, s: S) -> Dcsr<T>
where
    T: Value,
    S: Semiring<Value = T>,
{
    with_default_ctx(|ctx| rollup_ctx(ctx, a, prefix, axes, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::PlusTimes;

    #[test]
    fn keys_sort_numerically_and_round_trip() {
        let addrs = [
            ip(10, 2, 3, 4),
            ip(9, 255, 0, 1),
            ip(192, 168, 1, 1),
            ip(10, 2, 3, 200),
        ];
        let mut keys: Vec<String> = addrs.iter().map(|&a| ip_key(a)).collect();
        keys.sort();
        let mut sorted = addrs.to_vec();
        sorted.sort();
        assert_eq!(keys, sorted.iter().map(|&a| ip_key(a)).collect::<Vec<_>>());
        for &a in &addrs {
            assert_eq!(parse_ip_key(&ip_key(a)), Some(a));
            assert_eq!(parse_ip_key(&cidr_key(a, 16)), Some(mask_ip(a, 16)));
        }
        assert_eq!(parse_ip_key("10.2.3.4"), Some(ip(10, 2, 3, 4)));
        assert_eq!(parse_ip_key("10.2.3"), None);
        assert_eq!(parse_ip_key("10.2.3.4.5"), None);
        assert_eq!(parse_ip_key("not-an-ip"), None);
    }

    #[test]
    fn masking_is_monotone_and_composes_downward() {
        assert_eq!(mask_ip(ip(10, 2, 3, 4), 24), ip(10, 2, 3, 0));
        assert_eq!(mask_ip(ip(10, 2, 3, 4), 8), ip(10, 0, 0, 0));
        assert_eq!(mask_ip(ip(10, 2, 3, 4), 32), ip(10, 2, 3, 4));
        assert_eq!(mask_ip(ip(10, 2, 3, 4), 0), 0);
        // /8 ∘ /16 = /8, and monotonicity over a sorted sample.
        let a = ip(10, 2, 3, 4);
        assert_eq!(mask_ip(mask_ip(a, 16), 8), mask_ip(a, 8));
        let mut prev = 0u64;
        for raw in [0u64, 5, 1 << 10, 0xFFFF, 0xABCD_1234, u32::MAX as u64] {
            assert!(mask_ix(raw, 16) >= prev);
            prev = mask_ix(raw, 16);
        }
        // High tag bits survive masking.
        let tagged = (7u64 << 32) | u64::from(ip(10, 2, 3, 4));
        assert_eq!(tagged & !0xFFFF_FFFF, mask_ix(tagged, 8) & !0xFFFF_FFFF);
    }

    #[test]
    fn assoc_projection_aggregates_and_is_idempotent() {
        let s = PlusTimes::<f64>::new();
        let a = Assoc::from_triplets(
            vec![
                (ip_key(ip(10, 2, 3, 4)), ip_key(ip(192, 168, 0, 1)), 2.0),
                (ip_key(ip(10, 2, 9, 9)), ip_key(ip(192, 168, 0, 1)), 3.0),
                (ip_key(ip(11, 0, 0, 1)), ip_key(ip(192, 168, 0, 2)), 1.0),
            ],
            s,
        );
        let p = project(&a, 16, s);
        // The two 10.2.*.* sources merged into one /16 block row.
        assert_eq!(
            p.get(
                &cidr_key(ip(10, 2, 0, 0), 16),
                &cidr_key(ip(192, 168, 0, 0), 16)
            ),
            Some(5.0)
        );
        assert_eq!(p.nnz(), 2);
        // Idempotence: projecting again at /16 changes nothing.
        assert_eq!(project(&p, 16, s), p);
    }

    #[test]
    fn dcsr_rollup_merges_blocks_in_place() {
        let s = PlusTimes::<f64>::new();
        let mut coo = Coo::new(1 << 32, 1 << 32);
        coo.extend([
            (
                u64::from(ip(10, 2, 3, 4)),
                u64::from(ip(192, 168, 0, 1)),
                2.0,
            ),
            (
                u64::from(ip(10, 2, 9, 9)),
                u64::from(ip(192, 168, 0, 1)),
                3.0,
            ),
            (
                u64::from(ip(11, 0, 0, 1)),
                u64::from(ip(192, 168, 0, 2)),
                1.0,
            ),
        ]);
        let a = coo.build_dcsr(s);
        let r = rollup(&a, 16, RollupAxes::Both, s);
        assert_eq!(r.nnz(), 2);
        assert_eq!(
            r.get(u64::from(ip(10, 2, 0, 0)), u64::from(ip(192, 168, 0, 0)))
                .copied(),
            Some(5.0)
        );
        // Idempotent on the Dcsr layer too.
        let rr = rollup(&r, 16, RollupAxes::Both, s);
        assert_eq!(rr.nnz(), r.nnz());
        assert!(rr.iter().eq(r.iter()));

        // Rows-only rollup leaves destinations at host granularity.
        let rows = rollup(&a, 16, RollupAxes::Rows, s);
        assert_eq!(
            rows.get(u64::from(ip(10, 2, 0, 0)), u64::from(ip(192, 168, 0, 1)))
                .copied(),
            Some(5.0)
        );
    }

    #[test]
    fn rollup_records_kernel_metrics() {
        let s = PlusTimes::<f64>::new();
        let ctx = OpCtx::new();
        let mut coo = Coo::new(1 << 32, 1 << 32);
        coo.extend([(u64::from(ip(10, 0, 0, 1)), u64::from(ip(10, 0, 0, 2)), 1.0)]);
        let a = coo.build_dcsr(s);
        let _ = rollup_ctx(&ctx, &a, 8, RollupAxes::Both, s);
        let snap = ctx.metrics().snapshot();
        assert_eq!(snap.kernel(Kernel::Rollup).calls, 1);
        assert_eq!(snap.kernel(Kernel::Rollup).nnz_in, 1);
    }
}
