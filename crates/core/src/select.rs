//! The §V.B relational `select` as semilink algebra.
//!
//! The paper writes the canonical SQL statement
//!
//! ```sql
//! select k(1), …, k(n) from A where k(i) = v
//! ```
//!
//! over the database semilink `(𝔸, ∪, ∩, ∪.∩, ∅, 1, 𝕀)` (power-set
//! values, [`semiring::UnionIntersect`]) as
//!
//! ```text
//! |((A ∪.∩ 𝕀(k(i))) ∩ v) ∪.∩ 𝟙|₀ ∩ A
//! ```
//!
//! reading right to left through the pipeline:
//!
//! 1. `A ∪.∩ 𝕀(k(i))` — array-multiply by the single-key identity:
//!    isolates column `k(i)`;
//! 2. `∩ v` — element-wise intersect with the singleton `{v}`: keeps only
//!    cells whose set contains `v`;
//! 3. `∪.∩ 𝟙` — array-multiply by the all-ones array: broadcasts each
//!    surviving row across every column (a row mask);
//! 4. `| |₀` — zero-norm: normalizes mask values to the semiring `1`
//!    (= the universe 𝒫(𝕍));
//! 5. `∩ A` — element-wise intersect the mask with `A`: returns the
//!    matching rows, all columns.
//!
//! [`select_semilink`] executes that formula literally;
//! [`select_direct`] is the obvious row scan. They are proven equal by
//! unit tests here and by the property suite.

use semiring::{Atom, FnOp, PSet, UnionIntersect};

use crate::assoc::Assoc;
use crate::key::Key;

/// A database-shaped associative array: string-ish row/column keys,
/// power-set values (usually singletons of interned atoms).
pub type SetArray<K1, K2> = Assoc<K1, K2, PSet>;

/// Execute the paper's semilink select formula
/// `|((A ∪.∩ 𝕀(k)) ∩ v) ∪.∩ 𝟙|₀ ∩ A`: rows of `A` whose `col` cell
/// contains atom `v`, with all their columns.
pub fn select_semilink<K1: Key, K2: Key>(
    a: &SetArray<K1, K2>,
    col: &K2,
    v: Atom,
) -> SetArray<K1, K2> {
    let s = UnionIntersect;

    // 1. 𝕀(k(i)): identity restricted to the one column key.
    let id_k: Assoc<K2, K2, PSet> = Assoc::identity(vec![col.clone()], s);

    // 2. A ∪.∩ 𝕀(k(i)) — selects column k(i).
    let column = a.matmul(&id_k, s);

    // 3. ∩ v — keep cells whose set contains v.
    let matched = column.apply(FnOp(move |x: PSet| x.intersect(&PSet::singleton(v))), s);

    // 4. ∪.∩ 𝟙 — broadcast matching rows across all of A's columns.
    let ones: Assoc<K2, K2, PSet> = Assoc::ones(vec![col.clone()], a.col_keys().to_vec(), s);
    let mask = matched.matmul(&ones, s);

    // 5. | |₀ — normalize the mask to the ∪.∩ semiring's 1 (= 𝒫(𝕍)).
    let mask = mask.zero_norm(s);

    // 6. ∩ A — apply the mask.
    mask.ewise_mul(a, s)
}

/// The same query as a direct scan: find rows whose `col` cell contains
/// `v`, return those rows of `A` in full.
pub fn select_direct<K1: Key, K2: Key>(
    a: &SetArray<K1, K2>,
    col: &K2,
    v: Atom,
) -> SetArray<K1, K2> {
    let s = UnionIntersect;
    let matching: Vec<K1> = a
        .row_keys()
        .iter()
        .filter(|k1| a.get(k1, col).map(|set| set.contains(v)).unwrap_or(false))
        .cloned()
        .collect();
    a.filter(|k1, _, _| matching.binary_search(k1).is_ok(), s)
        .prune(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semiring::AtomTable;

    /// A tiny network-flow table: row = record id, column = field,
    /// value = singleton set of the field's (interned) value.
    fn flows() -> (SetArray<String, String>, AtomTable) {
        let mut atoms = AtomTable::new();
        let mut trips = Vec::new();
        let rows = [
            ("r1", "1.1.1.1", "2.2.2.2", "80"),
            ("r2", "3.3.3.3", "1.1.1.1", "443"),
            ("r3", "1.1.1.1", "4.4.4.4", "443"),
            ("r4", "5.5.5.5", "6.6.6.6", "80"),
        ];
        for (rid, src, dst, port) in rows {
            for (field, value) in [("src", src), ("dst", dst), ("port", port)] {
                let atom = atoms.intern(value);
                trips.push((rid.to_string(), field.to_string(), PSet::singleton(atom)));
            }
        }
        (Assoc::from_triplets(trips, UnionIntersect), atoms)
    }

    #[test]
    fn semilink_select_matches_direct_select() {
        let (a, mut atoms) = flows();
        let v = atoms.intern("1.1.1.1");
        for col in ["src", "dst", "port"] {
            let lhs = select_semilink(&a, &col.to_string(), v).prune(UnionIntersect);
            let rhs = select_direct(&a, &col.to_string(), v);
            assert_eq!(lhs, rhs, "column {col}");
        }
    }

    #[test]
    fn select_src_finds_expected_rows() {
        let (a, mut atoms) = flows();
        let v = atoms.intern("1.1.1.1");
        let hit = select_semilink(&a, &"src".to_string(), v);
        let rows: Vec<_> = crate::semilink::support_rows(&hit);
        assert_eq!(rows, vec!["r1".to_string(), "r3".to_string()]);
        // Full rows come back: r1 keeps its dst and port cells.
        let dst = atoms.intern("2.2.2.2");
        assert_eq!(
            hit.get(&"r1".to_string(), &"dst".to_string()),
            Some(PSet::singleton(dst))
        );
    }

    #[test]
    fn select_no_match_is_empty() {
        let (a, mut atoms) = flows();
        let v = atoms.intern("9.9.9.9");
        assert!(select_semilink(&a, &"src".to_string(), v).is_empty());
        assert!(select_direct(&a, &"src".to_string(), v).is_empty());
    }

    #[test]
    fn select_on_port_column() {
        let (a, mut atoms) = flows();
        let v = atoms.intern("443");
        let hit = select_direct(&a, &"port".to_string(), v);
        assert_eq!(
            crate::semilink::support_rows(&hit),
            vec!["r2".to_string(), "r3".to_string()]
        );
    }

    #[test]
    fn select_on_absent_column_is_empty() {
        let (a, mut atoms) = flows();
        let v = atoms.intern("80");
        assert!(select_semilink(&a, &"nosuch".to_string(), v).is_empty());
    }
}
