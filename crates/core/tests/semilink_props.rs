//! Property-based verification of every §IV semilink identity on
//! randomized arrays, plus the §V.B select equivalence on randomized
//! tables.

use hyperspace_core::select::{select_direct, select_semilink};
use hyperspace_core::semilink::*;
use hyperspace_core::Assoc;
use proptest::prelude::*;
use semiring::{AtomTable, MinPlus, PSet, PlusTimes, UnionIntersect};

const KEYS: [&str; 6] = ["a", "b", "c", "d", "e", "f"];

fn key() -> impl Strategy<Value = &'static str> {
    (0usize..KEYS.len()).prop_map(|i| KEYS[i])
}

fn triplets() -> impl Strategy<Value = Vec<(&'static str, &'static str, i64)>> {
    proptest::collection::vec((key(), key(), 1i64..20), 0..15)
}

/// A random (partial) permutation over the key universe: a shuffled
/// pairing of distinct rows with distinct columns.
fn permutation_pairs() -> impl Strategy<Value = Vec<(&'static str, &'static str)>> {
    (
        Just(KEYS.to_vec()).prop_shuffle(),
        Just(KEYS.to_vec()).prop_shuffle(),
    )
        .prop_map(|(rows, cols)| rows.into_iter().zip(cols).take(4).collect())
}

fn arr(t: Vec<(&'static str, &'static str, i64)>) -> Assoc<&'static str, &'static str, i64> {
    Assoc::from_triplets(t, PlusTimes::<i64>::new())
}

proptest! {
    #[test]
    fn identity_interplay_always_holds(_x in 0u8..3) {
        prop_assert!(check_identity_interplay(KEYS.as_ref(), PlusTimes::<i64>::new()));
        prop_assert!(check_identity_interplay(KEYS.as_ref(), MinPlus::<i64>::new()));
    }

    #[test]
    fn own_pattern_is_ewise_identity(t in triplets()) {
        prop_assert!(check_pattern_is_ewise_identity(&arr(t), PlusTimes::<i64>::new()));
    }

    #[test]
    fn projection_identities(t in triplets()) {
        let a = arr(t);
        prop_assert!(check_projection_rows(&a, KEYS.as_ref(), PlusTimes::<i64>::new()));
        prop_assert!(check_projection_cols(&a, KEYS.as_ref(), PlusTimes::<i64>::new()));
    }

    #[test]
    fn conditional_distributivity(
        pairs in permutation_pairs(),
        v1 in proptest::collection::vec(1i64..10, 4),
        v2 in proptest::collection::vec(1i64..10, 4),
        tb in triplets(),
        tc in triplets(),
    ) {
        let s = PlusTimes::<i64>::new();
        let a1 = Assoc::from_triplets(
            pairs.iter().zip(&v1).map(|(&(r, c), &v)| (r, c, v)).collect(), s);
        let a2 = Assoc::from_triplets(
            pairs.iter().zip(&v2).map(|(&(r, c), &v)| (r, c, v)).collect(), s);
        let (b, c) = (arr(tb), arr(tc));
        // Precondition holds by construction, so the verdict must be true.
        prop_assert_eq!(check_conditional_distributivity(&a1, &a2, &b, &c, s), Some(true));
    }

    #[test]
    fn hybrid_associativity_trivial_cases(tb in triplets(), tc in triplets()) {
        let s = PlusTimes::<i64>::new();
        let (b, c) = (arr(tb), arr(tc));
        prop_assert!(check_hybrid_assoc_ones(&b, &c, KEYS.as_ref(), s));
        prop_assert!(check_hybrid_assoc_identity(&b, &c, KEYS.as_ref(), s));
    }

    #[test]
    fn annihilation_when_supports_disjoint(ta in triplets(), tb in triplets(), tc in triplets()) {
        let s = PlusTimes::<i64>::new();
        let (a, b, c) = (arr(ta), arr(tb), arr(tc));
        // Whenever a precondition holds, the conclusion must.
        if let Some(v) = check_annihilation_ewise_first(&a, &b, &c, s) {
            prop_assert!(v);
        }
        if let Some(v) = check_annihilation_matmul_last(&a, &b, &c, s) {
            prop_assert!(v);
        }
        if let Some(v) = check_annihilation_corollary(&a, &b, &c, s) {
            prop_assert!(v);
        }
    }

    // ---- §V.B: semilink select ≡ direct select on random tables ----
    #[test]
    fn select_formula_equals_direct_scan(
        cells in proptest::collection::vec((0u8..20, 0u8..4, 0u8..6), 1..40),
        probe_col in 0u8..4,
        probe_val in 0u8..6,
    ) {
        let s = UnionIntersect;
        let mut atoms = AtomTable::new();
        let mut trips = Vec::new();
        for (row, col, val) in cells {
            let a = atoms.intern(&format!("v{val}"));
            trips.push((format!("r{row:02}"), format!("c{col}"), PSet::singleton(a)));
        }
        let table = Assoc::from_triplets(trips, s);
        let v = atoms.intern(&format!("v{probe_val}"));
        let col = format!("c{probe_col}");
        let lhs = select_semilink(&table, &col, v).prune(s);
        let rhs = select_direct(&table, &col, v);
        prop_assert_eq!(lhs, rhs);
    }
}
