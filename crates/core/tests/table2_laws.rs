//! Property-based verification of the Table II associative-array laws
//! on randomized string-keyed arrays with integer values (exact ⊕/⊗, so
//! every law is checked with exact equality).

use hyperspace_core::Assoc;
use proptest::prelude::*;
use semiring::{MinPlus, PlusTimes, Semiring};

type A = Assoc<String, String, i64>;

fn key() -> impl Strategy<Value = String> {
    // A small key universe so that operands overlap often.
    (0u8..12).prop_map(|i| format!("k{i}"))
}

fn triplets() -> impl Strategy<Value = Vec<(String, String, i64)>> {
    proptest::collection::vec((key(), key(), -50i64..50), 0..25)
}

fn arr(t: Vec<(String, String, i64)>) -> A {
    Assoc::from_triplets(t, PlusTimes::<i64>::new())
}

proptest! {
    // ---- Commutativity ----
    #[test]
    fn ewise_add_commutes(ta in triplets(), tb in triplets()) {
        let s = PlusTimes::<i64>::new();
        let (a, b) = (arr(ta), arr(tb));
        prop_assert_eq!(a.ewise_add(&b, s), b.ewise_add(&a, s));
    }

    #[test]
    fn ewise_mul_commutes(ta in triplets(), tb in triplets()) {
        let s = PlusTimes::<i64>::new();
        let (a, b) = (arr(ta), arr(tb));
        prop_assert_eq!(a.ewise_mul(&b, s), b.ewise_mul(&a, s));
    }

    // ---- Associativity ----
    #[test]
    fn ewise_add_associates(ta in triplets(), tb in triplets(), tc in triplets()) {
        let s = PlusTimes::<i64>::new();
        let (a, b, c) = (arr(ta), arr(tb), arr(tc));
        prop_assert_eq!(
            a.ewise_add(&b, s).ewise_add(&c, s),
            a.ewise_add(&b.ewise_add(&c, s), s)
        );
    }

    #[test]
    fn ewise_mul_associates(ta in triplets(), tb in triplets(), tc in triplets()) {
        let s = PlusTimes::<i64>::new();
        let (a, b, c) = (arr(ta), arr(tb), arr(tc));
        prop_assert_eq!(
            a.ewise_mul(&b, s).ewise_mul(&c, s),
            a.ewise_mul(&b.ewise_mul(&c, s), s)
        );
    }

    #[test]
    fn matmul_associates(ta in triplets(), tb in triplets(), tc in triplets()) {
        let s = PlusTimes::<i64>::new();
        let (a, b, c) = (arr(ta), arr(tb), arr(tc));
        prop_assert_eq!(
            a.matmul(&b, s).matmul(&c, s),
            a.matmul(&b.matmul(&c, s), s)
        );
    }

    // ---- Distributivity ----
    #[test]
    fn ewise_mul_distributes_over_add(ta in triplets(), tb in triplets(), tc in triplets()) {
        let s = PlusTimes::<i64>::new();
        let (a, b, c) = (arr(ta), arr(tb), arr(tc));
        prop_assert_eq!(
            a.ewise_mul(&b.ewise_add(&c, s), s),
            a.ewise_mul(&b, s).ewise_add(&a.ewise_mul(&c, s), s)
        );
    }

    #[test]
    fn matmul_distributes_over_add(ta in triplets(), tb in triplets(), tc in triplets()) {
        let s = PlusTimes::<i64>::new();
        let (a, b, c) = (arr(ta), arr(tb), arr(tc));
        prop_assert_eq!(
            a.matmul(&b.ewise_add(&c, s), s),
            a.matmul(&b, s).ewise_add(&a.matmul(&c, s), s)
        );
    }

    // ---- Identities / annihilators ----
    #[test]
    fn add_with_empty_is_identity(ta in triplets()) {
        let s = PlusTimes::<i64>::new();
        let a = arr(ta);
        let zero = A::new_empty();
        prop_assert_eq!(a.ewise_add(&zero, s), a.clone());
        prop_assert_eq!(zero.ewise_add(&a, s), a);
    }

    #[test]
    fn matmul_with_empty_annihilates(ta in triplets()) {
        let s = PlusTimes::<i64>::new();
        let a = arr(ta);
        let zero = A::new_empty();
        prop_assert!(a.matmul(&zero, s).is_empty());
        prop_assert!(zero.matmul(&a, s).is_empty());
    }

    #[test]
    fn matmul_with_identity_is_identity(ta in triplets()) {
        let s = PlusTimes::<i64>::new();
        let a = arr(ta);
        let id = Assoc::identity(a.col_keys().to_vec(), s);
        prop_assert_eq!(a.matmul(&id, s), a.clone());
        let idr = Assoc::identity(a.row_keys().to_vec(), s);
        prop_assert_eq!(idr.matmul(&a, s), a);
    }

    // ---- Transpose laws ----
    #[test]
    fn transpose_involution(ta in triplets()) {
        let s = PlusTimes::<i64>::new();
        let a = arr(ta);
        prop_assert_eq!(a.transpose(s).transpose(s), a);
    }

    #[test]
    fn transpose_of_product(ta in triplets(), tb in triplets()) {
        let s = PlusTimes::<i64>::new();
        let (a, b) = (arr(ta), arr(tb));
        prop_assert_eq!(
            a.matmul(&b, s).transpose(s),
            b.transpose(s).matmul(&a.transpose(s), s)
        );
    }

    // ---- The same laws under a tropical semiring ----
    #[test]
    fn tropical_matmul_associates(ta in triplets(), tb in triplets(), tc in triplets()) {
        let s = MinPlus::<i64>::new();
        let build = |t: Vec<(String, String, i64)>| Assoc::from_triplets(t, s);
        let (a, b, c) = (build(ta), build(tb), build(tc));
        prop_assert_eq!(
            a.matmul(&b, s).matmul(&c, s),
            a.matmul(&b.matmul(&c, s), s)
        );
    }

    #[test]
    fn tropical_distributivity(ta in triplets(), tb in triplets(), tc in triplets()) {
        let s = MinPlus::<i64>::new();
        let build = |t: Vec<(String, String, i64)>| Assoc::from_triplets(t, s);
        let (a, b, c) = (build(ta), build(tb), build(tc));
        prop_assert_eq!(
            a.matmul(&b.ewise_add(&c, s), s),
            a.matmul(&b, s).ewise_add(&a.matmul(&c, s), s)
        );
    }

    // ---- Structural properties ----
    #[test]
    fn zero_norm_preserves_pattern(ta in triplets()) {
        let s = PlusTimes::<i64>::new();
        let a = arr(ta);
        let p = a.zero_norm(s);
        prop_assert_eq!(p.nnz(), a.nnz());
        for (k1, k2, v) in p.to_triplets() {
            prop_assert_eq!(v, s.one());
            prop_assert!(a.get(&k1, &k2).is_some());
        }
    }

    #[test]
    fn extraction_construction_round_trip(ta in triplets()) {
        let s = PlusTimes::<i64>::new();
        let a = arr(ta);
        prop_assert_eq!(Assoc::from_triplets(a.to_triplets(), s), a);
    }
}
