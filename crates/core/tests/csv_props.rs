//! Property-based CSV round trips, including hostile key content
//! (commas, quotes, unicode) that exercises the quoting rules.

use hyperspace_core::csv::{
    from_csv_spreadsheet, from_csv_triples, to_csv_spreadsheet, to_csv_triples,
};
use hyperspace_core::Assoc;
use proptest::prelude::*;
use semiring::PlusTimes;

fn s() -> PlusTimes<f64> {
    PlusTimes::new()
}

/// Keys with characters that stress the CSV quoting path (no newlines —
/// line-oriented CSV; no leading/trailing quotes ambiguity).
fn key() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9 ,\"|.:→-]{1,12}")
        .expect("regex")
        .prop_filter("nonempty after trim, no newline", |k| {
            !k.trim().is_empty() && k.trim() == k
        })
}

fn triplets() -> impl Strategy<Value = Vec<(String, String, f64)>> {
    proptest::collection::vec(
        (key(), key(), -1.0e6..1.0e6f64).prop_filter("nonzero", |(_, _, v)| *v != 0.0),
        1..20,
    )
}

proptest! {
    #[test]
    fn spreadsheet_round_trip(t in triplets()) {
        let a = Assoc::from_triplets(t, s());
        let text = to_csv_spreadsheet(&a);
        let b = from_csv_spreadsheet(&text, s()).expect("parse back");
        prop_assert_eq!(a, b);
    }

    #[test]
    fn triples_round_trip(t in triplets()) {
        let a = Assoc::from_triplets(t, s());
        let text = to_csv_triples(&a);
        let b = from_csv_triples(&text, s()).expect("parse back");
        prop_assert_eq!(a, b);
    }

    #[test]
    fn both_shapes_agree(t in triplets()) {
        let a = Assoc::from_triplets(t, s());
        let via_sheet = from_csv_spreadsheet(&to_csv_spreadsheet(&a), s()).unwrap();
        let via_triples = from_csv_triples(&to_csv_triples(&a), s()).unwrap();
        prop_assert_eq!(via_sheet, via_triples);
    }
}
