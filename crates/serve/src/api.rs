//! The typed query API: requests, responses, query classes.
//!
//! One request enum covers the repo's whole query surface — the SQL
//! front-end, [`db::Select`] predicate trees on any of the three table
//! engines, the Fig. 6 graph-neighbor query, `GROUP BY` counts, and raw
//! point lookups — and every response carries the epoch it was answered
//! at, so callers can correlate answers across a rotating registry.

use std::fmt;
use std::sync::Arc;

use db::{PredExpr, ResultSet};
use hypersparse::Ix;

/// Which table engine answers a view-parametric request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum View {
    /// The D4M exploded-schema associative array (mask algebra).
    Assoc,
    /// The NoSQL triple store (index hops).
    Triple,
    /// The SQL-flavoured row store (full scan).
    Row,
}

impl View {
    /// Stable lowercase label (cache keys, metrics).
    pub fn label(self) -> &'static str {
        match self {
            View::Assoc => "assoc",
            View::Triple => "triple",
            View::Row => "row",
        }
    }
}

/// One query against a pinned epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryRequest {
    /// SQL text through the typed parser
    /// (`SELECT cols FROM t WHERE ...`).
    Sql {
        /// The query text.
        text: String,
    },
    /// A [`db::Select`] predicate-combinator tree on one engine;
    /// answers with matching record ids, sorted.
    Select {
        /// The engine to ask.
        view: View,
        /// The predicate tree (`Pred::eq(..).and(..)` …).
        expr: PredExpr,
    },
    /// Fig. 6's "nearest neighbors of `host`" on one engine.
    Neighbors {
        /// The engine to ask.
        view: View,
        /// The host key (e.g. `h7` under the flows schema).
        host: String,
    },
    /// `GROUP BY field COUNT(*)` on one engine.
    GroupCount {
        /// The engine to ask.
        view: View,
        /// The field to group on.
        field: String,
    },
    /// Raw point lookup in the snapshot matrix (no table build).
    Point {
        /// Row key.
        row: Ix,
        /// Column key.
        col: Ix,
    },
}

impl QueryRequest {
    /// Convenience constructor for SQL requests.
    pub fn sql(text: impl Into<String>) -> Self {
        QueryRequest::Sql { text: text.into() }
    }

    /// The request's class (histogram bucket).
    pub fn class(&self) -> QueryClass {
        match self {
            QueryRequest::Sql { .. } => QueryClass::Sql,
            QueryRequest::Select { .. } => QueryClass::Select,
            QueryRequest::Neighbors { .. } => QueryClass::Neighbors,
            QueryRequest::GroupCount { .. } => QueryClass::GroupCount,
            QueryRequest::Point { .. } => QueryClass::Point,
        }
    }

    /// Canonical cache key, or `None` for requests cheaper than a cache
    /// probe (point lookups).
    pub(crate) fn cache_key(&self) -> Option<String> {
        match self {
            QueryRequest::Sql { text } => Some(format!("sql:{text}")),
            QueryRequest::Select { view, expr } => {
                Some(format!("select:{}:{expr:?}", view.label()))
            }
            QueryRequest::Neighbors { view, host } => {
                Some(format!("neighbors:{}:{host}", view.label()))
            }
            QueryRequest::GroupCount { view, field } => {
                Some(format!("group:{}:{field}", view.label()))
            }
            QueryRequest::Point { .. } => None,
        }
    }
}

/// Per-class latency buckets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryClass {
    /// SQL text queries.
    Sql,
    /// Predicate-tree selects.
    Select,
    /// Graph-neighbor queries.
    Neighbors,
    /// Group-by counts.
    GroupCount,
    /// Point lookups.
    Point,
}

impl QueryClass {
    /// Every class, in histogram-index order.
    pub const ALL: [QueryClass; 5] = [
        QueryClass::Sql,
        QueryClass::Select,
        QueryClass::Neighbors,
        QueryClass::GroupCount,
        QueryClass::Point,
    ];

    /// Stable lowercase label (the Prometheus `class` label).
    pub fn label(self) -> &'static str {
        match self {
            QueryClass::Sql => "sql",
            QueryClass::Select => "select",
            QueryClass::Neighbors => "neighbors",
            QueryClass::GroupCount => "group_count",
            QueryClass::Point => "point",
        }
    }

    /// Index into per-class arrays.
    pub(crate) fn index(self) -> usize {
        match self {
            QueryClass::Sql => 0,
            QueryClass::Select => 1,
            QueryClass::Neighbors => 2,
            QueryClass::GroupCount => 3,
            QueryClass::Point => 4,
        }
    }
}

impl fmt::Display for QueryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The payload of a [`QueryResponse`].
#[derive(Clone, Debug, PartialEq)]
pub enum ResponseBody {
    /// A SQL result (id-sorted rows, named columns).
    Table(ResultSet),
    /// Matching record ids, sorted ascending.
    Ids(Vec<String>),
    /// Neighbor host keys, sorted ascending.
    Hosts(Vec<String>),
    /// `(group value, count)` pairs, sorted by group value.
    Counts(Vec<(String, usize)>),
    /// A point value rendered through `Display`, if stored.
    Cell(Option<String>),
}

impl ResponseBody {
    /// The table payload, if this is a SQL response.
    pub fn as_table(&self) -> Option<&ResultSet> {
        match self {
            ResponseBody::Table(t) => Some(t),
            _ => None,
        }
    }

    /// The id-list payload, if this is a select response.
    pub fn as_ids(&self) -> Option<&[String]> {
        match self {
            ResponseBody::Ids(v) => Some(v),
            _ => None,
        }
    }

    /// The host-list payload, if this is a neighbors response.
    pub fn as_hosts(&self) -> Option<&[String]> {
        match self {
            ResponseBody::Hosts(v) => Some(v),
            _ => None,
        }
    }

    /// The counts payload, if this is a group-count response.
    pub fn as_counts(&self) -> Option<&[(String, usize)]> {
        match self {
            ResponseBody::Counts(v) => Some(v),
            _ => None,
        }
    }

    /// The cell payload, if this is a point response.
    pub fn as_cell(&self) -> Option<Option<&str>> {
        match self {
            ResponseBody::Cell(v) => Some(v.as_deref()),
            _ => None,
        }
    }
}

/// An answered query: the epoch it ran against, whether the LRU cache
/// supplied the body, and the (shared) body itself.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The epoch this answer is consistent with.
    pub epoch: u64,
    /// True when the body came from the sub-view cache.
    pub cached: bool,
    /// The payload; `Arc`-shared with the cache, so repeated hits never
    /// copy result data.
    pub body: Arc<ResponseBody>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use db::Pred;

    #[test]
    fn cache_keys_are_canonical_and_disjoint() {
        let a = QueryRequest::sql("SELECT src FROM t WHERE dst = 'h1'");
        let b = QueryRequest::Select {
            view: View::Assoc,
            expr: Pred::eq("dst", "h1").expr(),
        };
        let c = QueryRequest::Select {
            view: View::Row,
            expr: Pred::eq("dst", "h1").expr(),
        };
        let keys: Vec<String> = [&a, &b, &c]
            .iter()
            .map(|q| q.cache_key().unwrap())
            .collect();
        assert_eq!(keys.len(), 3);
        assert!(keys
            .iter()
            .all(|k| keys.iter().filter(|x| *x == k).count() == 1));
        assert!(QueryRequest::Point { row: 1, col: 2 }.cache_key().is_none());
    }

    #[test]
    fn classes_have_stable_labels() {
        assert_eq!(QueryClass::ALL.len(), 5);
        for (i, c) in QueryClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(QueryClass::GroupCount.to_string(), "group_count");
    }
}
