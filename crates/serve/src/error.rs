//! Typed serving errors.

use std::error::Error;
use std::fmt;

use db::SqlError;
use pipeline::PipelineError;

/// Everything that can go wrong answering a query.
#[derive(Debug)]
pub enum ServeError {
    /// The SQL front-end rejected the query text.
    Sql(SqlError),
    /// The pipeline failed while producing a snapshot.
    Pipeline(PipelineError),
    /// No epoch has been published yet — nothing to serve.
    NoSnapshot,
    /// The requested epoch was published but has since rotated out of
    /// the registry's retention window.
    EpochEvicted {
        /// The epoch the caller asked for.
        epoch: u64,
        /// The oldest epoch still pinned in the registry.
        oldest_retained: u64,
    },
    /// The requested epoch has never been published (it is newer than
    /// anything the registry has seen).
    UnknownEpoch {
        /// The epoch the caller asked for.
        epoch: u64,
        /// The newest epoch the registry holds.
        newest: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Sql(e) => write!(f, "SQL error: {e}"),
            ServeError::Pipeline(e) => write!(f, "pipeline error: {e}"),
            ServeError::NoSnapshot => write!(f, "no snapshot published yet"),
            ServeError::EpochEvicted {
                epoch,
                oldest_retained,
            } => write!(
                f,
                "epoch {epoch} evicted from the registry (oldest retained: {oldest_retained})"
            ),
            ServeError::UnknownEpoch { epoch, newest } => {
                write!(f, "epoch {epoch} has not been published (newest: {newest})")
            }
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Sql(e) => Some(e),
            ServeError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SqlError> for ServeError {
    fn from(e: SqlError) -> Self {
        ServeError::Sql(e)
    }
}

impl From<PipelineError> for ServeError {
    fn from(e: PipelineError) -> Self {
        ServeError::Pipeline(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_detail() {
        let e = ServeError::EpochEvicted {
            epoch: 3,
            oldest_retained: 7,
        };
        assert!(e.to_string().contains("epoch 3"));
        assert!(e.to_string().contains("oldest retained: 7"));
        assert!(ServeError::NoSnapshot.to_string().contains("no snapshot"));
    }

    #[test]
    fn sql_errors_chain_as_source() {
        let sql = db::sql::parse("SELEC x").unwrap_err();
        let e = ServeError::from(sql);
        assert!(e.source().is_some());
    }
}
