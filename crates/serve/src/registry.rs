//! The epoch registry: retain the last N published snapshots behind
//! `Arc` handles.
//!
//! Readers **pin** an epoch by cloning its `Arc<EpochView>` out of the
//! registry — after that they never touch the registry again, so a
//! writer publishing (or evicting) epochs can never block or invalidate
//! an in-flight query. The write lock is held only for the `VecDeque`
//! rotation itself, never during snapshot assembly or table builds.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use pipeline::{EpochSnapshot, PodValue, SnapshotSink};
use semiring::traits::Semiring;

use crate::error::ServeError;
use crate::view::{EpochView, ViewSchema};

/// Holds the latest `capacity` epochs as shared [`EpochView`]s.
///
/// Implements [`SnapshotSink`], so it can be attached to a
/// [`pipeline::Pipeline`] with `add_snapshot_sink` and receive every
/// `snapshot_shared` epoch zero-copy.
#[derive(Debug)]
pub struct SnapshotRegistry<S: Semiring>
where
    S::Value: PodValue,
{
    capacity: usize,
    schema: ViewSchema<S::Value>,
    /// Newest at the back; oldest rotates off the front.
    epochs: RwLock<VecDeque<Arc<EpochView<S>>>>,
    /// Highest epoch ever evicted (0 = none): distinguishes
    /// [`ServeError::EpochEvicted`] from [`ServeError::UnknownEpoch`].
    evicted_through: AtomicU64,
    published: AtomicU64,
}

impl<S: Semiring> SnapshotRegistry<S>
where
    S::Value: PodValue,
{
    /// A registry retaining the latest `capacity` epochs (≥ 1).
    pub fn new(capacity: usize, schema: ViewSchema<S::Value>) -> Self {
        assert!(capacity >= 1, "registry must retain at least one epoch");
        SnapshotRegistry {
            capacity,
            schema,
            epochs: RwLock::new(VecDeque::with_capacity(capacity + 1)),
            evicted_through: AtomicU64::new(0),
            published: AtomicU64::new(0),
        }
    }

    /// Publish one epoch: wraps the shared snapshot in an [`EpochView`]
    /// and rotates the oldest epoch out past capacity. Zero-copy (the
    /// snapshot `Arc` is stored, not the matrix), idempotent per epoch,
    /// and out-of-order republication of an older epoch is ignored.
    /// Readers already pinned to any epoch — including one evicted right
    /// now — are unaffected: their `Arc` keeps the view alive.
    pub fn publish(&self, snap: Arc<EpochSnapshot<S>>) {
        let mut q = self.epochs.write().expect("registry poisoned");
        if let Some(newest) = q.back() {
            if snap.epoch() <= newest.epoch() {
                return;
            }
        }
        q.push_back(Arc::new(EpochView::new(snap, self.schema.clone())));
        self.published.fetch_add(1, Ordering::Relaxed);
        while q.len() > self.capacity {
            if let Some(old) = q.pop_front() {
                self.evicted_through
                    .fetch_max(old.epoch(), Ordering::Relaxed);
            }
        }
    }

    /// Pin the newest epoch. Errors with [`ServeError::NoSnapshot`]
    /// before the first publication.
    pub fn pin_latest(&self) -> Result<Arc<EpochView<S>>, ServeError> {
        self.epochs
            .read()
            .expect("registry poisoned")
            .back()
            .cloned()
            .ok_or(ServeError::NoSnapshot)
    }

    /// Pin a specific epoch; typed errors tell eviction apart from
    /// never-published.
    pub fn pin_epoch(&self, epoch: u64) -> Result<Arc<EpochView<S>>, ServeError> {
        let q = self.epochs.read().expect("registry poisoned");
        if let Some(v) = q.iter().find(|v| v.epoch() == epoch) {
            return Ok(Arc::clone(v));
        }
        let newest = q.back().map(|v| v.epoch()).unwrap_or(0);
        let oldest = q.front().map(|v| v.epoch()).unwrap_or(0);
        drop(q);
        if newest == 0 {
            Err(ServeError::NoSnapshot)
        } else if epoch <= self.evicted_through.load(Ordering::Relaxed) {
            Err(ServeError::EpochEvicted {
                epoch,
                oldest_retained: oldest,
            })
        } else {
            Err(ServeError::UnknownEpoch { epoch, newest })
        }
    }

    /// The retained epoch numbers, oldest first.
    pub fn epochs(&self) -> Vec<u64> {
        self.epochs
            .read()
            .expect("registry poisoned")
            .iter()
            .map(|v| v.epoch())
            .collect()
    }

    /// Retained epoch count.
    pub fn len(&self) -> usize {
        self.epochs.read().expect("registry poisoned").len()
    }

    /// True before any publication.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total epochs ever published (accepted) through this registry.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }
}

impl<S: Semiring> SnapshotSink<S> for SnapshotRegistry<S>
where
    S::Value: PodValue,
{
    fn publish(&self, snapshot: &Arc<EpochSnapshot<S>>) {
        SnapshotRegistry::publish(self, Arc::clone(snapshot));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::Pipeline;
    use semiring::PlusTimes;

    fn registry(cap: usize) -> SnapshotRegistry<PlusTimes<f64>> {
        SnapshotRegistry::new(cap, ViewSchema::flows())
    }

    #[test]
    fn rotation_keeps_latest_n() {
        let p = Pipeline::new(64, 64, PlusTimes::<f64>::new());
        let reg = registry(2);
        for i in 0..4u64 {
            p.ingest(i, i, 1.0).unwrap();
            reg.publish(p.snapshot_shared().unwrap());
        }
        assert_eq!(reg.epochs(), vec![3, 4]);
        assert_eq!(reg.published(), 4);
        assert_eq!(reg.pin_latest().unwrap().epoch(), 4);
        p.shutdown().unwrap();
    }

    #[test]
    fn pinned_epoch_survives_eviction() {
        let p = Pipeline::new(64, 64, PlusTimes::<f64>::new());
        let reg = registry(1);
        p.ingest(0, 0, 1.0).unwrap();
        reg.publish(p.snapshot_shared().unwrap());
        let pinned = reg.pin_latest().unwrap();
        assert_eq!(pinned.nnz(), 1);

        p.ingest(1, 1, 1.0).unwrap();
        reg.publish(p.snapshot_shared().unwrap());
        // Epoch 1 rotated out of the registry…
        assert!(matches!(
            reg.pin_epoch(1),
            Err(ServeError::EpochEvicted {
                epoch: 1,
                oldest_retained: 2
            })
        ));
        // …but the pinned handle still answers, unchanged.
        assert_eq!(pinned.epoch(), 1);
        assert_eq!(pinned.nnz(), 1);
        p.shutdown().unwrap();
    }

    #[test]
    fn typed_errors_for_missing_epochs() {
        let p = Pipeline::new(64, 64, PlusTimes::<f64>::new());
        let reg = registry(4);
        assert!(matches!(reg.pin_latest(), Err(ServeError::NoSnapshot)));
        assert!(matches!(reg.pin_epoch(1), Err(ServeError::NoSnapshot)));
        p.ingest(0, 0, 1.0).unwrap();
        reg.publish(p.snapshot_shared().unwrap());
        assert!(matches!(
            reg.pin_epoch(9),
            Err(ServeError::UnknownEpoch {
                epoch: 9,
                newest: 1
            })
        ));
        p.shutdown().unwrap();
    }

    #[test]
    fn acts_as_pipeline_sink() {
        let p = Pipeline::new(64, 64, PlusTimes::<f64>::new());
        let reg = Arc::new(registry(8));
        p.add_snapshot_sink(Arc::clone(&reg) as Arc<dyn SnapshotSink<_>>);
        p.ingest(3, 4, 5.0).unwrap();
        let snap = p.snapshot_shared().unwrap();
        let view = reg.pin_latest().unwrap();
        // Zero-copy: registry and caller share the same snapshot.
        assert!(Arc::ptr_eq(view.snapshot(), &snap));
        p.shutdown().unwrap();
    }

    #[test]
    fn republication_is_idempotent() {
        let p = Pipeline::new(64, 64, PlusTimes::<f64>::new());
        let reg = registry(4);
        p.ingest(0, 0, 1.0).unwrap();
        let snap = p.snapshot_shared().unwrap();
        reg.publish(Arc::clone(&snap));
        reg.publish(snap); // e.g. sink + explicit refresh double-delivery
        assert_eq!(reg.epochs(), vec![1]);
        assert_eq!(reg.published(), 1);
        p.shutdown().unwrap();
    }
}
