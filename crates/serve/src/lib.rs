//! Snapshot query-serving front-end — the paper's hyperspace as a
//! *service*.
//!
//! *Mathematics of Digital Hyperspace* closes the loop between
//! streaming ingest (§III's hierarchical hypersparse matrices) and the
//! polystore query surface of §V.B: one dataset answering SQL, NoSQL,
//! and associative-array queries simultaneously. This crate is that
//! loop, deployed:
//!
//! * [`SnapshotRegistry`] retains the latest N epoch-stamped
//!   [`pipeline::EpochSnapshot`]s behind `Arc` handles — readers **pin**
//!   an epoch with one `Arc` clone and keep answering against it while
//!   writers publish new epochs; publication never blocks or invalidates
//!   a pinned reader, and the matrix data is never copied.
//! * [`EpochView`] lazily explodes a pinned snapshot into the three
//!   `db` engines (associative array, triple store, row store) under a
//!   caller-supplied [`ViewSchema`] — built once per epoch, shared by
//!   every query.
//! * [`QueryRequest`]/[`QueryResponse`] form the typed API: SQL text,
//!   [`db::Pred`] combinator trees, Fig. 6 neighbor queries, group-by
//!   counts, and raw point lookups, each answering with the epoch it
//!   ran at.
//! * [`ViewCache`] memoizes materialized sub-views under
//!   `(epoch, query)` keys — rotation can evict, never staleness.
//! * [`ServeMetrics`] keeps per-query-class latency histograms and
//!   renders a Prometheus exposition that concatenates with
//!   [`pipeline::Pipeline::render_prometheus`] into one scrape body;
//!   every query runs under a `serve_query` trace span.
//!
//! ```
//! use pipeline::Pipeline;
//! use semiring::PlusTimes;
//! use serve::{QueryRequest, QueryServer, ViewSchema};
//!
//! let p = Pipeline::new(1 << 20, 1 << 20, PlusTimes::<f64>::new());
//! let srv = QueryServer::new(ViewSchema::flows());
//! srv.attach(&p);                       // registry receives every epoch
//! p.ingest(1, 2, 1.0).unwrap();
//! p.snapshot_shared().unwrap();         // publish epoch 1
//! let r = srv
//!     .query(&QueryRequest::sql("SELECT dst FROM flows WHERE src = 'h1'"))
//!     .unwrap();
//! assert_eq!(r.epoch, 1);
//! assert_eq!(r.body.as_table().unwrap().rows()[0].get("dst"), Some("h2"));
//! p.shutdown().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod error;
pub mod metrics;
pub mod registry;
pub mod server;
pub mod view;

pub use api::{QueryClass, QueryRequest, QueryResponse, ResponseBody, View};
pub use cache::ViewCache;
pub use error::ServeError;
pub use metrics::{ServeMetrics, ServeMetricsSnapshot};
pub use registry::SnapshotRegistry;
pub use server::{QueryServer, DEFAULT_CACHE_ENTRIES, DEFAULT_EPOCHS};
pub use view::{EpochView, Tables, ViewSchema};
