//! One pinned epoch, wearing the three database costumes.
//!
//! An [`EpochView`] wraps an `Arc`-shared [`EpochSnapshot`] together
//! with a [`ViewSchema`] that explains each stored entry as a record.
//! The three table engines ([`AssocTable`], [`TripleStore`],
//! [`RowTable`]) are built **lazily, once per epoch** behind a
//! `OnceLock`: pinning an epoch is an `Arc` clone, and the first query
//! that needs a table pays for construction exactly once — every later
//! query on any thread shares the same tables.

use std::fmt;
use std::sync::{Arc, OnceLock};

use db::{AssocTable, Record, RowTable, TripleStore};
use hypersparse::Ix;
use pipeline::{EpochSnapshot, PodValue};
use semiring::traits::Semiring;

/// The entry→record closure a [`ViewSchema`] wraps.
type RecordFn<V> = dyn Fn(Ix, Ix, &V) -> (String, Record) + Send + Sync;

/// How a stored `(row, col, value)` entry reads as a database record.
///
/// The serving layer is schema-agnostic: callers supply the closure that
/// names records and fields; [`ViewSchema::flows`] is the network-flow
/// default matching the repo's Fig. 6 harness (`src`/`dst`/`weight`).
pub struct ViewSchema<V> {
    to_record: Arc<RecordFn<V>>,
}

impl<V> Clone for ViewSchema<V> {
    fn clone(&self) -> Self {
        ViewSchema {
            to_record: Arc::clone(&self.to_record),
        }
    }
}

impl<V> fmt::Debug for ViewSchema<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ViewSchema")
    }
}

impl<V> ViewSchema<V> {
    /// A schema from an arbitrary entry→record closure. The returned id
    /// must be unique per entry (record ids key every table engine).
    pub fn new(f: impl Fn(Ix, Ix, &V) -> (String, Record) + Send + Sync + 'static) -> Self {
        ViewSchema {
            to_record: Arc::new(f),
        }
    }

    /// Read one entry as a record.
    pub fn record(&self, row: Ix, col: Ix, val: &V) -> (String, Record) {
        (self.to_record)(row, col, val)
    }
}

impl<V: fmt::Display> ViewSchema<V> {
    /// The network-flow default: entry `(r, c, v)` becomes record
    /// `e<r>-<c>` with fields `src = h<r>`, `dst = h<c>`,
    /// `weight = <v>` — the exploded schema the Fig. 6 queries expect.
    pub fn flows() -> Self {
        ViewSchema::new(|r, c, v| {
            (
                format!("e{r:08}-{c:08}"),
                vec![
                    ("src".into(), format!("h{r}")),
                    ("dst".into(), format!("h{c}")),
                    ("weight".into(), format!("{v}")),
                ],
            )
        })
    }

    /// The netflow schema: keys are IPv4 addresses in the low 32 bits of
    /// the index (the [`hyperspace_core::cidr`] encoding). Entry
    /// `(src, dst, packets)` becomes record `f<src>-<dst>` with
    /// zero-padded dotted-quad `src`/`dst` fields — so SQL/select
    /// predicates on IP strings sort and compare in address order — plus
    /// the packet count.
    pub fn netflow() -> Self {
        use hyperspace_core::cidr::ip_key;
        ViewSchema::new(|r, c, v| {
            let (src, dst) = (ip_key(r as u32), ip_key(c as u32));
            (
                format!("f{src}-{dst}"),
                vec![
                    ("src".into(), src),
                    ("dst".into(), dst),
                    ("packets".into(), format!("{v}")),
                ],
            )
        })
    }
}

/// The three table engines built from one epoch.
#[derive(Debug)]
pub struct Tables {
    /// The D4M exploded-schema associative array (mask-algebra selects).
    pub assoc: AssocTable,
    /// The NoSQL triple store (hash indexes both directions).
    pub triples: TripleStore,
    /// The SQL-flavoured row store (full-scan baseline).
    pub rows: RowTable,
}

/// A pinned, immutable epoch plus its lazily-built database views.
///
/// Cloning the `Arc<EpochView>` handed out by the registry is the *only*
/// cost of pinning: the snapshot matrix is shared, never copied, and
/// concurrent publication of newer epochs cannot disturb it.
#[derive(Debug)]
pub struct EpochView<S: Semiring>
where
    S::Value: PodValue,
{
    snap: Arc<EpochSnapshot<S>>,
    schema: ViewSchema<S::Value>,
    tables: OnceLock<Tables>,
}

impl<S: Semiring> EpochView<S>
where
    S::Value: PodValue,
{
    /// Wrap a shared snapshot under a schema. Zero-copy: the snapshot
    /// `Arc` is stored as-is.
    pub fn new(snap: Arc<EpochSnapshot<S>>, schema: ViewSchema<S::Value>) -> Self {
        EpochView {
            snap,
            schema,
            tables: OnceLock::new(),
        }
    }

    /// The epoch this view serves.
    pub fn epoch(&self) -> u64 {
        self.snap.epoch()
    }

    /// The underlying snapshot (shared, not copied).
    pub fn snapshot(&self) -> &Arc<EpochSnapshot<S>> {
        &self.snap
    }

    /// Entries in the pinned snapshot.
    pub fn nnz(&self) -> usize {
        self.snap.nnz()
    }

    /// The epoch's records under this view's schema (rebuilt on each
    /// call; the cached [`Tables`] are what queries use).
    pub fn records(&self) -> Vec<(String, Record)> {
        self.snap
            .dcsr()
            .iter()
            .map(|(r, c, v)| self.schema.record(r, c, v))
            .collect()
    }

    /// The three table engines, built on first use and shared by every
    /// later query against this epoch (any thread).
    pub fn tables(&self) -> &Tables {
        self.tables.get_or_init(|| {
            let records = self.records();
            Tables {
                assoc: AssocTable::from_records(records.clone()),
                triples: TripleStore::from_records(records.clone()),
                rows: RowTable::from_records(records),
            }
        })
    }

    /// Whether the tables have been materialized yet (tests and
    /// capacity planning; queries just call [`EpochView::tables`]).
    pub fn tables_built(&self) -> bool {
        self.tables.get().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline::Pipeline;
    use semiring::PlusTimes;

    fn one_epoch() -> Arc<EpochSnapshot<PlusTimes<f64>>> {
        let p = Pipeline::new(64, 64, PlusTimes::<f64>::new());
        p.ingest(1, 2, 1.0).unwrap();
        p.ingest(1, 3, 1.0).unwrap();
        p.ingest(2, 1, 1.0).unwrap();
        let snap = p.snapshot_shared().unwrap();
        p.shutdown().unwrap();
        snap
    }

    #[test]
    fn flows_schema_explodes_entries() {
        let view = EpochView::new(one_epoch(), ViewSchema::flows());
        assert_eq!(view.epoch(), 1);
        let t = view.tables();
        assert_eq!(t.rows.len(), 3);
        // Fig. 6 agreement: all three engines see h1's neighbors.
        let expected: Vec<String> = vec!["h2".into(), "h3".into()];
        let got: Vec<String> = t.assoc.neighbors("h1").into_iter().collect();
        assert_eq!(got, expected);
        let got: Vec<String> = t.triples.neighbors("h1").into_iter().collect();
        assert_eq!(got, expected);
        let got: Vec<String> = t.rows.neighbors("h1").into_iter().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn tables_build_once_lazily() {
        let view = EpochView::new(one_epoch(), ViewSchema::flows());
        assert!(!view.tables_built());
        let first = view.tables() as *const Tables;
        assert!(view.tables_built());
        let second = view.tables() as *const Tables;
        assert_eq!(first, second, "tables are built exactly once");
    }

    #[test]
    fn netflow_schema_renders_dotted_quads() {
        let schema: ViewSchema<f64> = ViewSchema::netflow();
        let (id, rec) = schema.record(0x0A00_0001, 0xC0A8_0105, &7.0);
        assert_eq!(id, "f010.000.000.001-192.168.001.005");
        assert_eq!(
            rec,
            vec![
                ("src".to_string(), "010.000.000.001".to_string()),
                ("dst".to_string(), "192.168.001.005".to_string()),
                ("packets".to_string(), "7".to_string()),
            ]
        );
    }

    #[test]
    fn custom_schema_controls_naming() {
        use db::Select;
        let schema: ViewSchema<f64> =
            ViewSchema::new(|r, c, v| (format!("{r}:{c}"), vec![("w".into(), format!("{v}"))]));
        let view = EpochView::new(one_epoch(), schema);
        assert_eq!(view.tables().rows.all_ids(), ["1:2", "1:3", "2:1"]);
    }
}
