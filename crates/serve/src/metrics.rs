//! Serving observability: counters plus per-query-class latency
//! histograms, rendered in the same Prometheus text exposition the
//! pipeline uses (so one scrape endpoint can concatenate both).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use hypersparse::trace::{write_prometheus_header, write_prometheus_histogram};
use hypersparse::{Histogram, HistogramSnapshot};

use crate::api::QueryClass;

/// Live serving counters; shared by reference, updated lock-free.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    queries: AtomicU64,
    errors: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    refreshes: AtomicU64,
    latency: [Histogram; QueryClass::ALL.len()],
}

impl ServeMetrics {
    /// Record one answered query.
    pub fn record_query(&self, class: QueryClass, elapsed: Duration, cached: bool) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if cached {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        self.latency[class.index()].record(elapsed);
    }

    /// Record one failed query.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one registry refresh.
    pub fn record_refresh(&self) {
        self.refreshes.fetch_add(1, Ordering::Relaxed);
    }

    /// Freeze everything into an owned snapshot.
    pub fn snapshot(&self) -> ServeMetricsSnapshot {
        ServeMetricsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            latency: std::array::from_fn(|i| self.latency[i].snapshot()),
        }
    }
}

/// Frozen serving counters and histograms.
#[derive(Clone, Debug)]
pub struct ServeMetricsSnapshot {
    /// Queries answered (hits + misses).
    pub queries: u64,
    /// Queries that returned a [`crate::ServeError`].
    pub errors: u64,
    /// Answers served from the sub-view cache.
    pub cache_hits: u64,
    /// Answers computed fresh.
    pub cache_misses: u64,
    /// Registry refreshes performed.
    pub refreshes: u64,
    /// Per-class latency, indexed like [`QueryClass::ALL`].
    pub latency: [HistogramSnapshot; QueryClass::ALL.len()],
}

impl ServeMetricsSnapshot {
    /// One class's latency histogram.
    pub fn class(&self, class: QueryClass) -> &HistogramSnapshot {
        &self.latency[class.index()]
    }

    /// All classes merged into one histogram (whole-service quantiles).
    pub fn merged_latency(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for h in &self.latency {
            out.merge(h);
        }
        out
    }

    /// The Prometheus text exposition: `serve_*` counters plus
    /// `serve_query_latency_seconds{class="..."}` histograms. Designed
    /// to concatenate with [`pipeline::Pipeline::render_prometheus`].
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, help, v) in [
            ("serve_queries_total", "Queries answered", self.queries),
            ("serve_query_errors_total", "Queries failed", self.errors),
            (
                "serve_cache_hits_total",
                "Answers served from the sub-view cache",
                self.cache_hits,
            ),
            (
                "serve_cache_misses_total",
                "Answers computed fresh",
                self.cache_misses,
            ),
            (
                "serve_refreshes_total",
                "Registry refreshes",
                self.refreshes,
            ),
        ] {
            write_prometheus_header(&mut out, name, "counter", help);
            let _ = writeln!(out, "{name} {v}");
        }
        write_prometheus_header(
            &mut out,
            "serve_query_latency_seconds",
            "histogram",
            "Query latency by class",
        );
        for class in QueryClass::ALL {
            let h = self.class(class);
            if h.count() == 0 {
                continue;
            }
            write_prometheus_histogram(
                &mut out,
                "serve_query_latency_seconds",
                &format!("class=\"{}\"", class.label()),
                h,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_partition_by_class_and_cache_state() {
        let m = ServeMetrics::default();
        m.record_query(QueryClass::Sql, Duration::from_micros(10), false);
        m.record_query(QueryClass::Sql, Duration::from_micros(1), true);
        m.record_query(QueryClass::Point, Duration::from_nanos(50), false);
        m.record_error();
        let s = m.snapshot();
        assert_eq!(s.queries, 3);
        assert_eq!(s.errors, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 2);
        assert_eq!(s.class(QueryClass::Sql).count(), 2);
        assert_eq!(s.class(QueryClass::Point).count(), 1);
        assert_eq!(s.class(QueryClass::Neighbors).count(), 0);
        assert_eq!(s.merged_latency().count(), 3);
    }

    #[test]
    fn prometheus_exposition_is_labelled_per_class() {
        let m = ServeMetrics::default();
        m.record_query(QueryClass::Select, Duration::from_micros(5), false);
        let text = m.snapshot().render_prometheus();
        assert!(text.contains("# TYPE serve_queries_total counter"));
        assert!(text.contains("serve_queries_total 1"));
        assert!(text.contains("serve_query_latency_seconds_bucket{class=\"select\""));
        // Empty classes are omitted entirely.
        assert!(!text.contains("class=\"sql\""));
    }
}
