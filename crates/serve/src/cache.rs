//! Epoch-keyed LRU cache of materialized sub-views.
//!
//! Keys are `(epoch, canonical request string)`: a cached body can only
//! ever answer the exact epoch it was computed at, so rotation can
//! *never* make the cache serve stale data — eviction is purely a
//! memory-bound concern. Entries from rotated-out epochs are dropped
//! eagerly by [`ViewCache::retain_epochs`] (the server calls it on every
//! refresh) and lazily by LRU pressure otherwise.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::api::ResponseBody;

/// One cached entry: `(epoch, canonical query)` key plus shared body.
type CacheEntry = ((u64, String), Arc<ResponseBody>);

/// A small LRU over `Arc`-shared response bodies.
#[derive(Debug)]
pub struct ViewCache {
    capacity: usize,
    /// Most recently used at the back. O(n) probes — fine at the tens
    /// of entries a serving cache holds.
    entries: Mutex<VecDeque<CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ViewCache {
    /// A cache holding up to `capacity` bodies (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        ViewCache {
            capacity,
            entries: Mutex::new(VecDeque::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up `(epoch, key)`, refreshing its recency on a hit.
    pub fn lookup(&self, epoch: u64, key: &str) -> Option<Arc<ResponseBody>> {
        let mut q = self.entries.lock().expect("cache poisoned");
        let pos = q.iter().position(|((e, k), _)| *e == epoch && k == key)?;
        let entry = q.remove(pos).expect("position just found");
        let body = Arc::clone(&entry.1);
        q.push_back(entry);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(body)
    }

    /// Record a miss (kept separate from [`ViewCache::lookup`] so probes
    /// for uncacheable requests don't skew the ratio).
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Insert a freshly computed body, evicting the least recently used
    /// entry past capacity.
    pub fn insert(&self, epoch: u64, key: String, body: Arc<ResponseBody>) {
        if self.capacity == 0 {
            return;
        }
        let mut q = self.entries.lock().expect("cache poisoned");
        if let Some(pos) = q.iter().position(|((e, k), _)| *e == epoch && *k == key) {
            q.remove(pos);
        }
        q.push_back(((epoch, key), body));
        while q.len() > self.capacity {
            q.pop_front();
        }
    }

    /// Drop every entry whose epoch is not in `live` (registry
    /// rotation's eager invalidation).
    pub fn retain_epochs(&self, live: &[u64]) {
        self.entries
            .lock()
            .expect("cache poisoned")
            .retain(|((e, _), _)| live.contains(e));
    }

    /// Cached entry count.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache poisoned").len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(ids: &[&str]) -> Arc<ResponseBody> {
        Arc::new(ResponseBody::Ids(
            ids.iter().map(|s| s.to_string()).collect(),
        ))
    }

    #[test]
    fn lru_evicts_oldest_and_refreshes_on_hit() {
        let c = ViewCache::new(2);
        c.insert(1, "a".into(), body(&["x"]));
        c.insert(1, "b".into(), body(&["y"]));
        assert!(c.lookup(1, "a").is_some()); // refresh a → b is now LRU
        c.insert(1, "c".into(), body(&["z"]));
        assert_eq!(c.len(), 2);
        assert!(c.lookup(1, "b").is_none(), "b was least recently used");
        assert!(c.lookup(1, "a").is_some());
        assert!(c.lookup(1, "c").is_some());
    }

    #[test]
    fn epochs_partition_the_key_space() {
        let c = ViewCache::new(8);
        c.insert(1, "q".into(), body(&["old"]));
        c.insert(2, "q".into(), body(&["new"]));
        assert_eq!(c.lookup(1, "q").unwrap().as_ids().unwrap(), ["old"]);
        assert_eq!(c.lookup(2, "q").unwrap().as_ids().unwrap(), ["new"]);
    }

    #[test]
    fn retain_epochs_drops_rotated_entries() {
        let c = ViewCache::new(8);
        c.insert(1, "q".into(), body(&["a"]));
        c.insert(2, "q".into(), body(&["b"]));
        c.insert(3, "q".into(), body(&["c"]));
        c.retain_epochs(&[2, 3]);
        assert_eq!(c.len(), 2);
        assert!(c.lookup(1, "q").is_none());
        assert!(c.lookup(3, "q").is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = ViewCache::new(0);
        c.insert(1, "q".into(), body(&["a"]));
        assert!(c.is_empty());
        assert!(c.lookup(1, "q").is_none());
    }
}
