//! The query server: registry + cache + metrics + tracing in one
//! front-end handle.
//!
//! `QueryServer` is `Sync` — share it behind an `Arc` and answer
//! queries from any number of reader threads while a writer thread
//! keeps publishing fresh epochs through [`QueryServer::refresh`] (or a
//! pipeline-side [`pipeline::SnapshotSink`] attachment). Readers pin an
//! epoch once per query (an `Arc` clone) and never block on
//! publication.

use std::fmt::Display;
use std::sync::Arc;
use std::time::Instant;

use hypersparse::{TraceMode, TraceRegistry};
use pipeline::{Pipeline, PodValue};
use semiring::traits::Semiring;

use crate::api::{QueryRequest, QueryResponse, ResponseBody, View};
use crate::cache::ViewCache;
use crate::error::ServeError;
use crate::metrics::{ServeMetrics, ServeMetricsSnapshot};
use crate::registry::SnapshotRegistry;
use crate::view::{EpochView, ViewSchema};

use db::Select;

/// Default epochs retained by [`QueryServer::new`].
pub const DEFAULT_EPOCHS: usize = 4;
/// Default cached sub-views held by [`QueryServer::new`].
pub const DEFAULT_CACHE_ENTRIES: usize = 64;

/// A concurrent, in-process query-serving front-end over pipeline
/// snapshots.
#[derive(Debug)]
pub struct QueryServer<S: Semiring>
where
    S::Value: PodValue,
{
    registry: Arc<SnapshotRegistry<S>>,
    cache: ViewCache,
    metrics: ServeMetrics,
    trace: TraceRegistry,
}

impl<S: Semiring> QueryServer<S>
where
    S::Value: PodValue + Display,
{
    /// A server with default retention ([`DEFAULT_EPOCHS`]) and cache
    /// size ([`DEFAULT_CACHE_ENTRIES`]).
    pub fn new(schema: ViewSchema<S::Value>) -> Self {
        QueryServer::with_capacity(DEFAULT_EPOCHS, DEFAULT_CACHE_ENTRIES, schema)
    }

    /// A server retaining `epochs` snapshots and caching up to
    /// `cache_entries` materialized sub-views.
    pub fn with_capacity(
        epochs: usize,
        cache_entries: usize,
        schema: ViewSchema<S::Value>,
    ) -> Self {
        QueryServer {
            registry: Arc::new(SnapshotRegistry::new(epochs, schema)),
            cache: ViewCache::new(cache_entries),
            metrics: ServeMetrics::default(),
            trace: TraceRegistry::default(),
        }
    }

    /// The underlying epoch registry (e.g. to attach as a sink or to
    /// inspect retention).
    pub fn registry(&self) -> &Arc<SnapshotRegistry<S>> {
        &self.registry
    }

    /// Subscribe this server's registry to the pipeline's snapshot
    /// publication: every later `p.snapshot_shared()` lands here
    /// zero-copy, with no explicit [`QueryServer::refresh`] needed.
    pub fn attach(&self, p: &Pipeline<S>) {
        p.add_snapshot_sink(Arc::clone(&self.registry) as Arc<dyn pipeline::SnapshotSink<S>>);
    }

    /// Take a fresh snapshot from `p`, publish it (idempotent if the
    /// server is also attached as a sink), drop cache entries from
    /// rotated-out epochs, and return the new epoch.
    pub fn refresh(&self, p: &Pipeline<S>) -> Result<u64, ServeError> {
        let snap = p.snapshot_shared()?;
        let epoch = snap.epoch();
        self.registry.publish(snap);
        self.cache.retain_epochs(&self.registry.epochs());
        self.metrics.record_refresh();
        Ok(epoch)
    }

    /// Like [`QueryServer::refresh`], but through the pipeline's
    /// *incremental* marker wave: the full snapshot is published here
    /// (and every registered standing view absorbs the epoch's delta
    /// on the way), and the `(epoch, delta_nnz)` pair is returned so
    /// callers can see how much actually changed. `full(t) =
    /// full(t−1) ⊕ delta(t)` holds wave over wave, so serving reads
    /// the same matrix either way — this path just keeps standing
    /// queries `O(Δ)` instead of `O(window)`.
    pub fn refresh_incremental(&self, p: &Pipeline<S>) -> Result<(u64, u64), ServeError> {
        let inc = p.snapshot_incremental()?;
        let epoch = inc.full.epoch();
        let delta_nnz = inc.delta.nnz() as u64;
        self.registry.publish(Arc::clone(&inc.full));
        self.cache.retain_epochs(&self.registry.epochs());
        self.metrics.record_refresh();
        Ok((epoch, delta_nnz))
    }

    /// Pin the newest published epoch (an `Arc` clone; never blocks
    /// publication, never copies the snapshot).
    pub fn pin_latest(&self) -> Result<Arc<EpochView<S>>, ServeError> {
        self.registry.pin_latest()
    }

    /// Pin a specific epoch, with typed eviction errors.
    pub fn pin_epoch(&self, epoch: u64) -> Result<Arc<EpochView<S>>, ServeError> {
        self.registry.pin_epoch(epoch)
    }

    /// Answer `req` against the newest epoch.
    pub fn query(&self, req: &QueryRequest) -> Result<QueryResponse, ServeError> {
        let view = self.pin_latest()?;
        self.query_pinned(&view, req)
    }

    /// Answer `req` against a specific retained epoch.
    pub fn query_at(&self, epoch: u64, req: &QueryRequest) -> Result<QueryResponse, ServeError> {
        let view = self.pin_epoch(epoch)?;
        self.query_pinned(&view, req)
    }

    /// Answer `req` against an already-pinned epoch. This is the core
    /// path: trace span, cache probe, compute on miss, per-class
    /// latency record.
    pub fn query_pinned(
        &self,
        view: &Arc<EpochView<S>>,
        req: &QueryRequest,
    ) -> Result<QueryResponse, ServeError> {
        let class = req.class();
        let epoch = view.epoch();
        let _span = self
            .trace
            .span("serve_query", || format!("{class} @ epoch {epoch}"));
        let t = Instant::now();

        let key = req.cache_key();
        if let Some(k) = &key {
            if let Some(body) = self.cache.lookup(epoch, k) {
                self.metrics.record_query(class, t.elapsed(), true);
                return Ok(QueryResponse {
                    epoch,
                    cached: true,
                    body,
                });
            }
            self.cache.record_miss();
        }

        let body = match self.compute(view, req) {
            Ok(b) => Arc::new(b),
            Err(e) => {
                self.metrics.record_error();
                return Err(e);
            }
        };
        if let Some(k) = key {
            self.cache.insert(epoch, k, Arc::clone(&body));
        }
        self.metrics.record_query(class, t.elapsed(), false);
        Ok(QueryResponse {
            epoch,
            cached: false,
            body,
        })
    }

    fn compute(&self, view: &EpochView<S>, req: &QueryRequest) -> Result<ResponseBody, ServeError> {
        Ok(match req {
            QueryRequest::Sql { text } => {
                ResponseBody::Table(db::sql::try_execute(text, &view.tables().assoc)?)
            }
            QueryRequest::Select { view: v, expr } => {
                let t = view.tables();
                ResponseBody::Ids(match v {
                    View::Assoc => t.assoc.select(expr),
                    View::Triple => t.triples.select(expr),
                    View::Row => t.rows.select(expr),
                })
            }
            QueryRequest::Neighbors { view: v, host } => {
                let t = view.tables();
                let hosts = match v {
                    View::Assoc => t.assoc.neighbors(host),
                    View::Triple => t.triples.neighbors(host),
                    View::Row => t.rows.neighbors(host),
                };
                ResponseBody::Hosts(hosts.into_iter().collect())
            }
            QueryRequest::GroupCount { view: v, field } => {
                let t = view.tables();
                let mut counts: Vec<(String, usize)> = match v {
                    View::Assoc => t.assoc.group_count(field),
                    View::Triple => t.triples.group_count(field).into_iter().collect(),
                    View::Row => t.rows.group_count(field).into_iter().collect(),
                };
                counts.sort();
                ResponseBody::Counts(counts)
            }
            QueryRequest::Point { row, col } => {
                ResponseBody::Cell(view.snapshot().get(*row, *col).map(|v| format!("{v}")))
            }
        })
    }

    // -- observability --------------------------------------------------

    /// Frozen serving counters and per-class latency histograms.
    pub fn metrics(&self) -> ServeMetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The sub-view cache (hit/miss counters, entry count).
    pub fn cache(&self) -> &ViewCache {
        &self.cache
    }

    /// The server's trace registry (every query runs under a
    /// `serve_query` span).
    pub fn trace(&self) -> &TraceRegistry {
        &self.trace
    }

    /// Switch query-span tracing (default [`TraceMode::Disabled`]:
    /// span sites cost one relaxed atomic load).
    pub fn set_trace_mode(&self, mode: TraceMode) {
        self.trace.set_mode(mode);
    }

    /// The serving Prometheus exposition (`serve_*` metrics only).
    pub fn render_prometheus(&self) -> String {
        self.metrics.snapshot().render_prometheus()
    }

    /// The merged exposition: the pipeline's service + kernel metrics
    /// followed by the serving layer's — one scrape body for the whole
    /// ingest-to-answer stack.
    pub fn render_prometheus_with(&self, p: &Pipeline<S>) -> String {
        let mut out = p.render_prometheus();
        out.push_str(&self.render_prometheus());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use db::Pred;
    use semiring::PlusTimes;

    fn served() -> (Pipeline<PlusTimes<f64>>, QueryServer<PlusTimes<f64>>) {
        let p = Pipeline::new(64, 64, PlusTimes::<f64>::new());
        let srv = QueryServer::new(ViewSchema::flows());
        p.ingest(1, 2, 1.0).unwrap();
        p.ingest(1, 3, 2.0).unwrap();
        p.ingest(2, 1, 4.0).unwrap();
        srv.refresh(&p).unwrap();
        (p, srv)
    }

    #[test]
    fn all_request_classes_answer() {
        let (p, srv) = served();
        let sql = srv
            .query(&QueryRequest::sql("SELECT dst FROM flows WHERE src = 'h1'"))
            .unwrap();
        assert_eq!(sql.epoch, 1);
        assert_eq!(sql.body.as_table().unwrap().len(), 2);

        for v in [View::Assoc, View::Triple, View::Row] {
            let sel = srv
                .query(&QueryRequest::Select {
                    view: v,
                    expr: Pred::eq("src", "h1").expr(),
                })
                .unwrap();
            assert_eq!(
                sel.body.as_ids().unwrap(),
                ["e00000001-00000002", "e00000001-00000003"],
                "{v:?}"
            );
            let n = srv
                .query(&QueryRequest::Neighbors {
                    view: v,
                    host: "h1".into(),
                })
                .unwrap();
            assert_eq!(n.body.as_hosts().unwrap(), ["h2", "h3"], "{v:?}");
            let g = srv
                .query(&QueryRequest::GroupCount {
                    view: v,
                    field: "src".into(),
                })
                .unwrap();
            assert_eq!(
                g.body.as_counts().unwrap(),
                [("h1".to_string(), 2), ("h2".to_string(), 1)],
                "{v:?}"
            );
        }

        let pt = srv.query(&QueryRequest::Point { row: 1, col: 3 }).unwrap();
        assert_eq!(pt.body.as_cell().unwrap(), Some("2"));
        let miss = srv.query(&QueryRequest::Point { row: 9, col: 9 }).unwrap();
        assert_eq!(miss.body.as_cell().unwrap(), None);
        p.shutdown().unwrap();
    }

    #[test]
    fn cache_hits_are_epoch_scoped() {
        let (p, srv) = served();
        let req = QueryRequest::sql("SELECT src FROM flows WHERE dst = 'h1'");
        let first = srv.query(&req).unwrap();
        assert!(!first.cached);
        let second = srv.query(&req).unwrap();
        assert!(second.cached);
        // Shared body, not a copy.
        assert!(Arc::ptr_eq(&first.body, &second.body));

        // New epoch ⇒ the same request recomputes (never a stale hit).
        p.ingest(5, 1, 1.0).unwrap();
        srv.refresh(&p).unwrap();
        let third = srv.query(&req).unwrap();
        assert!(!third.cached);
        assert_eq!(third.epoch, 2);
        assert_eq!(third.body.as_table().unwrap().len(), 2);
        p.shutdown().unwrap();
    }

    #[test]
    fn sql_errors_surface_typed() {
        let (p, srv) = served();
        let err = srv
            .query(&QueryRequest::sql("SELECT src FROM flows WHERE"))
            .unwrap_err();
        assert!(matches!(err, ServeError::Sql(_)));
        assert_eq!(srv.metrics().errors, 1);
        p.shutdown().unwrap();
    }

    #[test]
    fn metrics_and_exposition_cover_the_query_mix() {
        let (p, srv) = served();
        srv.query(&QueryRequest::sql("SELECT src FROM flows WHERE dst = 'h1'"))
            .unwrap();
        srv.query(&QueryRequest::Point { row: 1, col: 2 }).unwrap();
        let m = srv.metrics();
        assert_eq!(m.queries, 2);
        assert_eq!(m.refreshes, 1);
        assert_eq!(m.class(crate::QueryClass::Sql).count(), 1);
        let text = srv.render_prometheus_with(&p);
        assert!(text.contains("pipeline_events_ingested_total")); // pipeline half
        assert!(text.contains("serve_queries_total 2")); // serving half
        p.shutdown().unwrap();
    }

    #[test]
    fn incremental_refresh_publishes_full_and_reports_delta() {
        let (p, srv) = served(); // 3 entries, epoch 1 already published
        p.ingest(7, 8, 1.0).unwrap();
        let (epoch, delta) = srv.refresh_incremental(&p).unwrap();
        assert_eq!(epoch, 2);
        assert_eq!(delta, 4, "first delta cut covers the whole stream");
        let pt = srv.query(&QueryRequest::Point { row: 7, col: 8 }).unwrap();
        assert_eq!(pt.epoch, 2);
        assert_eq!(pt.body.as_cell().unwrap(), Some("1"));
        p.ingest(7, 9, 1.0).unwrap();
        let (_, delta2) = srv.refresh_incremental(&p).unwrap();
        assert_eq!(delta2, 1, "second wave sees only the new entry");
        p.shutdown().unwrap();
    }

    #[test]
    fn query_at_pins_historical_epochs() {
        let (p, srv) = served();
        p.ingest(9, 9, 1.0).unwrap();
        srv.refresh(&p).unwrap();
        let old = srv
            .query_at(1, &QueryRequest::Point { row: 9, col: 9 })
            .unwrap();
        assert_eq!(old.body.as_cell().unwrap(), None, "epoch 1 predates 9,9");
        let new = srv
            .query_at(2, &QueryRequest::Point { row: 9, col: 9 })
            .unwrap();
        assert_eq!(new.body.as_cell().unwrap(), Some("1"));
        p.shutdown().unwrap();
    }
}
