//! Property: answers through the serving layer are identical to direct
//! computation on tables built from the same records — the front-end
//! adds pinning, caching, and metrics, never different answers.

use db::query::{Pred, PredExpr};
use db::sql::try_execute_baseline;
use db::{AssocTable, RowTable, Select, TripleStore};
use pipeline::Pipeline;
use proptest::prelude::*;
use semiring::PlusTimes;
use serve::{QueryRequest, QueryServer, View, ViewSchema};

/// Random sparse event sets over a small host world (collision-prone on
/// purpose: ⊕-accumulation and every-view agreement both get exercised).
fn events() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..8, 0u64..8), 1..30)
}

fn pred() -> impl Strategy<Value = Pred> {
    prop_oneof![
        (0u8..2, 0u64..8).prop_map(|(f, v)| Pred::eq(["src", "dst"][f as usize], &format!("h{v}"))),
        (0u8..2, proptest::collection::vec(0u64..8, 1..3)).prop_map(|(f, vs)| {
            Pred::is_in(
                ["src", "dst"][f as usize],
                vs.into_iter().map(|v| format!("h{v}")),
            )
        }),
    ]
}

fn expr() -> impl Strategy<Value = PredExpr> {
    (pred(), pred(), 0u8..3).prop_map(|(a, b, op)| match op {
        0 => a.and(b),
        1 => a.or(b),
        _ => a.and_not(b),
    })
}

type Served = (
    Pipeline<PlusTimes<f64>>,
    QueryServer<PlusTimes<f64>>,
    Vec<(String, db::Record)>,
);

/// Serve the events and also hand back the ground-truth records the
/// flows schema implies.
fn serve(events: &[(u64, u64)]) -> Served {
    let p = Pipeline::new(64, 64, PlusTimes::<f64>::new());
    let srv = QueryServer::new(ViewSchema::flows());
    for &(r, c) in events {
        p.ingest(r, c, 1.0).unwrap();
    }
    srv.refresh(&p).unwrap();
    let records = srv.pin_latest().unwrap().records();
    (p, srv, records)
}

proptest! {
    #[test]
    fn served_selects_equal_direct_tables(evs in events(), e in expr()) {
        let (p, srv, records) = serve(&evs);
        let assoc = AssocTable::from_records(records.clone());
        let triples = TripleStore::from_records(records.clone());
        let rows = RowTable::from_records(records);
        for (view, want) in [
            (View::Assoc, assoc.select(&e)),
            (View::Triple, triples.select(&e)),
            (View::Row, rows.select(&e)),
        ] {
            let got = srv
                .query(&QueryRequest::Select { view, expr: e.clone() })
                .unwrap();
            prop_assert_eq!(got.body.as_ids().unwrap(), want.as_slice());
            prop_assert_eq!(got.epoch, 1);
        }
        p.shutdown().unwrap();
    }

    #[test]
    fn served_sql_equals_row_store_baseline(evs in events(), h in 0u64..8) {
        let (p, srv, records) = serve(&evs);
        let rows = RowTable::from_records(records);
        let sql = format!("SELECT dst FROM flows WHERE src = 'h{h}'");
        let want = try_execute_baseline(&sql, &rows).unwrap();
        let got = srv.query(&QueryRequest::sql(&sql)).unwrap();
        prop_assert_eq!(got.body.as_table().unwrap(), &want);
        // And the cached second answer is the same object.
        let again = srv.query(&QueryRequest::sql(&sql)).unwrap();
        prop_assert!(again.cached);
        prop_assert_eq!(again.body.as_table().unwrap(), &want);
        p.shutdown().unwrap();
    }

    #[test]
    fn served_point_lookups_equal_snapshot_gets(evs in events()) {
        let (p, srv, _) = serve(&evs);
        let pinned = srv.pin_latest().unwrap();
        for &(r, c) in evs.iter().take(5) {
            let got = srv
                .query(&QueryRequest::Point { row: r, col: c })
                .unwrap();
            let want = pinned.snapshot().get(r, c).map(|v| format!("{v}"));
            prop_assert_eq!(got.body.as_cell().unwrap().map(str::to_string), want);
        }
        p.shutdown().unwrap();
    }

    #[test]
    fn served_group_counts_total_to_nnz(evs in events()) {
        let (p, srv, _) = serve(&evs);
        let nnz = srv.pin_latest().unwrap().nnz();
        for view in [View::Assoc, View::Triple, View::Row] {
            let got = srv
                .query(&QueryRequest::GroupCount { view, field: "src".into() })
                .unwrap();
            let total: usize = got.body.as_counts().unwrap().iter().map(|(_, c)| c).sum();
            prop_assert_eq!(total, nnz, "{:?}", view);
        }
        p.shutdown().unwrap();
    }
}
