//! Snapshot pinning under concurrent publication: readers holding an
//! epoch keep a bit-identical view while a live writer rotates the
//! registry underneath them, evicted epochs fail with typed errors, and
//! the cache never answers across epochs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use pipeline::Pipeline;
use semiring::PlusTimes;
use serve::{QueryRequest, QueryServer, ServeError, View, ViewSchema};

fn flows_server(epochs: usize) -> (Pipeline<PlusTimes<f64>>, Arc<QueryServer<PlusTimes<f64>>>) {
    let p = Pipeline::new(1 << 12, 1 << 12, PlusTimes::<f64>::new());
    let srv = Arc::new(QueryServer::with_capacity(epochs, 32, ViewSchema::flows()));
    srv.attach(&p);
    (p, srv)
}

#[test]
fn pinned_readers_see_bit_identical_epochs_during_rotation() {
    let (p, srv) = flows_server(2);
    let p = Arc::new(p);

    // Epoch 1: a known small world.
    for i in 0..10u64 {
        p.ingest(i, (i + 1) % 10, 1.0).unwrap();
    }
    p.snapshot_shared().unwrap();
    let pinned = srv.pin_latest().unwrap();
    assert_eq!(pinned.epoch(), 1);
    let frozen = pinned.snapshot().dcsr().clone();

    // Live writer: keeps ingesting and publishing epochs 2..=8 while
    // readers hammer the pinned epoch-1 view.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let p = Arc::clone(&p);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut k = 10u64;
            while !stop.load(Ordering::Relaxed) {
                p.ingest(k % 4096, (k * 7) % 4096, 1.0).unwrap();
                if k.is_multiple_of(16) {
                    p.snapshot_shared().unwrap();
                }
                k += 1;
            }
            p.snapshot_shared().unwrap().epoch()
        })
    };

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let srv = Arc::clone(&srv);
            let pinned = Arc::clone(&pinned);
            let frozen = frozen.clone();
            thread::spawn(move || {
                for _ in 0..200 {
                    // The pinned handle is immutable: identical matrix
                    // every single read, mid-rotation or not.
                    assert_eq!(pinned.snapshot().dcsr(), &frozen);
                    let r = srv
                        .query_pinned(&pinned, &QueryRequest::Point { row: 0, col: 1 })
                        .unwrap();
                    assert_eq!(r.epoch, 1);
                    assert_eq!(r.body.as_cell().unwrap(), Some("1"));
                    // Fresh pins always name the epoch they answer at.
                    let latest = srv.query(&QueryRequest::Point { row: 0, col: 1 }).unwrap();
                    assert!(latest.epoch >= 1);
                }
            })
        })
        .collect();
    for r in readers {
        r.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let final_epoch = writer.join().unwrap();
    assert!(final_epoch > 2, "writer actually rotated epochs");

    // Epoch 1 rotated out long ago: pinning it anew is a typed error,
    // but the held handle still answers bit-identically.
    match srv.pin_epoch(1) {
        Err(ServeError::EpochEvicted {
            epoch: 1,
            oldest_retained,
        }) => assert!(oldest_retained > 1),
        other => panic!("expected EpochEvicted, got {other:?}"),
    }
    assert_eq!(pinned.snapshot().dcsr(), &frozen);

    Arc::try_unwrap(p).ok().unwrap().shutdown().unwrap();
}

#[test]
fn cache_responses_always_match_their_epoch() {
    let (p, srv) = flows_server(3);
    let req = QueryRequest::Select {
        view: View::Assoc,
        expr: db::Pred::eq("src", "h1").expr(),
    };

    let mut per_epoch = Vec::new();
    for round in 0..5u64 {
        p.ingest(1, 100 + round, 1.0).unwrap();
        let epoch = srv.refresh(&p).unwrap();
        // Miss then hit, same epoch, same (shared) body.
        let miss = srv.query(&req).unwrap();
        let hit = srv.query(&req).unwrap();
        assert!(!miss.cached);
        assert!(hit.cached);
        assert_eq!(miss.epoch, epoch);
        assert_eq!(hit.epoch, epoch);
        assert!(Arc::ptr_eq(&miss.body, &hit.body));
        // Each epoch sees one more matching record than the last: a
        // stale cross-epoch hit would repeat an old length.
        assert_eq!(miss.body.as_ids().unwrap().len(), round as usize + 1);
        per_epoch.push((epoch, miss.body.as_ids().unwrap().len()));
    }
    assert_eq!(per_epoch.len(), 5);

    // Rotation pruned cache entries for dead epochs (capacity 3).
    let live = srv.registry().epochs();
    assert_eq!(live, vec![3, 4, 5]);
    let m = srv.metrics();
    assert_eq!(m.cache_hits, 5);
    assert_eq!(m.cache_misses, 5);
    p.shutdown().unwrap();
}

#[test]
fn concurrent_readers_share_one_table_build_per_epoch() {
    let (p, srv) = flows_server(2);
    for i in 0..50u64 {
        p.ingest(i % 20, (i * 3) % 20, 1.0).unwrap();
    }
    srv.refresh(&p).unwrap();

    let view = srv.pin_latest().unwrap();
    assert!(!view.tables_built());
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let srv = Arc::clone(&srv);
            thread::spawn(move || {
                let pinned = srv.pin_latest().unwrap();
                let r = srv
                    .query_pinned(
                        &pinned,
                        &QueryRequest::Neighbors {
                            view: View::Triple,
                            host: "h3".into(),
                        },
                    )
                    .unwrap();
                r.body.as_hosts().unwrap().to_vec()
            })
        })
        .collect();
    let answers: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(answers.windows(2).all(|w| w[0] == w[1]));
    // Every reader pinned the same Arc'd view; tables were built once.
    assert!(view.tables_built());
    p.shutdown().unwrap();
}
