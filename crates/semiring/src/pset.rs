//! Power-set values for the relational `∪.∩` semiring.
//!
//! Table I's sixth row is the semiring `(𝒫(𝕍), ∪, ∩, ∅, 𝒫(𝕍))` that the
//! paper identifies with relational algebra (§V.B). Its multiplicative
//! identity is the *entire power set's top element* — the universe 𝕍 —
//! which for the unbounded key spaces of digital hyperspace cannot be
//! materialized. [`PSet`] therefore represents the universe *lazily* as a
//! distinguished variant, mirroring how the paper's `𝕀` has `𝒫(𝕍)` on the
//! diagonal without ever enumerating 𝕍.
//!
//! Elements are `u64` atoms; string universes go through
//! [`crate::AtomTable`] interning.

use std::collections::BTreeSet;
use std::fmt;

/// A subset of an (implicit, possibly infinite) universe of `u64` atoms,
/// or the universe itself.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum PSet {
    /// The full universe `𝒫(𝕍)`'s top element 𝕍 — multiplicative identity
    /// of `∪.∩`, absorbing under `∪`.
    Universe,
    /// An explicit finite subset (kept sorted by `BTreeSet`).
    Set(BTreeSet<u64>),
}

impl PSet {
    /// The empty set ∅ — additive identity and multiplicative annihilator.
    pub fn empty() -> Self {
        PSet::Set(BTreeSet::new())
    }

    /// The lazy universe 𝕍.
    pub fn universe() -> Self {
        PSet::Universe
    }

    /// Singleton `{v}`.
    pub fn singleton(v: u64) -> Self {
        PSet::Set(BTreeSet::from([v]))
    }

    /// Build from any iterator of atoms.
    #[allow(clippy::should_implement_trait)] // also provided via FromIterator; this inherent form reads better at call sites
    pub fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        PSet::Set(iter.into_iter().collect())
    }

    /// `true` iff this is ∅.
    pub fn is_empty(&self) -> bool {
        matches!(self, PSet::Set(s) if s.is_empty())
    }

    /// `true` iff this is the universe.
    pub fn is_universe(&self) -> bool {
        matches!(self, PSet::Universe)
    }

    /// Membership test. The universe contains everything.
    pub fn contains(&self, v: u64) -> bool {
        match self {
            PSet::Universe => true,
            PSet::Set(s) => s.contains(&v),
        }
    }

    /// Cardinality, if finite.
    pub fn len(&self) -> Option<usize> {
        match self {
            PSet::Universe => None,
            PSet::Set(s) => Some(s.len()),
        }
    }

    /// Set union — the semiring ⊕.
    pub fn union(&self, other: &PSet) -> PSet {
        match (self, other) {
            (PSet::Universe, _) | (_, PSet::Universe) => PSet::Universe,
            (PSet::Set(a), PSet::Set(b)) => {
                // Merge the smaller into a clone of the larger.
                let (big, small) = if a.len() >= b.len() { (a, b) } else { (b, a) };
                let mut out = big.clone();
                out.extend(small.iter().copied());
                PSet::Set(out)
            }
        }
    }

    /// Set intersection — the semiring ⊗. The universe is its identity.
    pub fn intersect(&self, other: &PSet) -> PSet {
        match (self, other) {
            (PSet::Universe, x) | (x, PSet::Universe) => x.clone(),
            (PSet::Set(a), PSet::Set(b)) => {
                let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
                PSet::Set(small.iter().copied().filter(|v| big.contains(v)).collect())
            }
        }
    }

    /// Iterate the atoms of a finite set. Panics on the universe, which has
    /// no enumerable extension — callers must check [`PSet::is_universe`].
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        match self {
            PSet::Universe => panic!("cannot enumerate the lazy universe"),
            PSet::Set(s) => s.iter().copied(),
        }
    }

    /// The finite atoms as a sorted `Vec`, or `None` for the universe.
    pub fn to_vec(&self) -> Option<Vec<u64>> {
        match self {
            PSet::Universe => None,
            PSet::Set(s) => Some(s.iter().copied().collect()),
        }
    }
}

impl fmt::Debug for PSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PSet::Universe => write!(f, "𝕍"),
            PSet::Set(s) => f.debug_set().entries(s.iter()).finish(),
        }
    }
}

impl fmt::Display for PSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<u64> for PSet {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        PSet::from_iter(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_universe_identities() {
        let a = PSet::from_iter([1, 5, 9]);
        assert_eq!(a.union(&PSet::empty()), a);
        assert_eq!(a.intersect(&PSet::universe()), a);
        // ∅ annihilates ∩; 𝕍 absorbs ∪.
        assert!(a.intersect(&PSet::empty()).is_empty());
        assert!(a.union(&PSet::universe()).is_universe());
    }

    #[test]
    fn union_and_intersection() {
        let a = PSet::from_iter([1, 2, 3]);
        let b = PSet::from_iter([3, 4]);
        assert_eq!(a.union(&b), PSet::from_iter([1, 2, 3, 4]));
        assert_eq!(a.intersect(&b), PSet::singleton(3));
    }

    #[test]
    fn membership_and_len() {
        assert!(PSet::universe().contains(123456));
        assert_eq!(PSet::universe().len(), None);
        let s = PSet::from_iter([7, 8]);
        assert!(s.contains(7));
        assert!(!s.contains(9));
        assert_eq!(s.len(), Some(2));
    }

    #[test]
    fn intersection_distributes_over_union_spot_check() {
        let a = PSet::from_iter([1, 2]);
        let b = PSet::from_iter([2, 3]);
        let c = PSet::from_iter([3, 4]);
        let lhs = a.intersect(&b.union(&c));
        let rhs = a.intersect(&b).union(&a.intersect(&c));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn to_vec_is_sorted() {
        let s = PSet::from_iter([9, 1, 5]);
        assert_eq!(s.to_vec(), Some(vec![1, 5, 9]));
        assert_eq!(PSet::universe().to_vec(), None);
    }

    #[test]
    #[should_panic(expected = "cannot enumerate")]
    fn universe_iter_panics() {
        let _ = PSet::universe().iter().count();
    }
}
