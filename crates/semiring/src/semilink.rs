//! The scalar face of the paper's **semilink** (§IV).
//!
//! A semilink `(𝔸, ⊕, ⊗, ⊕.⊗, 0, 1, 𝕀)` couples the element-wise semiring
//! `(𝔸, ⊕, ⊗, 0, 1)` with the array semiring `(𝔸, ⊕, ⊕.⊗, 𝕆, 𝕀)`: three
//! operations sharing a single scalar value set and a single scalar
//! semiring. At the *scalar* level a semilink is therefore determined by
//! one [`Semiring`]; the new structure only appears at the *array* level,
//! where `⊗` (element-wise) and `⊕.⊗` (array multiply) interact through
//! the identities `1` (all-ones array) and `𝕀` (identity array).
//!
//! This module carries the scalar bundle plus the DNN **semiring pair**
//! of §V.C, which the paper notes is *more* than a semilink: inference
//! oscillates between two different semirings `S₁ = (+.×)` and
//! `S₂ = (max.+)` over the same value set.
//!
//! The seven array-level identities of §IV are implemented and tested in
//! the `hyperspace-core` crate (`hyperspace_core::semilink`), where arrays
//! exist.

use crate::semirings::{MaxPlus, PlusTimes};
use crate::traits::Semiring;

/// A semilink: one scalar semiring viewed as the common algebra of the
/// three array operations ⊕, ⊗, and ⊕.⊗.
///
/// The array-level operations themselves live where arrays live; this
/// struct names the coupling and carries the scalar constants every
/// array-level identity is phrased in.
#[derive(Copy, Clone, Debug, Default)]
pub struct Semilink<S: Semiring> {
    /// The underlying scalar semiring.
    pub semiring: S,
}

impl<S: Semiring> Semilink<S> {
    /// Bundle a scalar semiring into a semilink.
    pub fn new(semiring: S) -> Self {
        Semilink { semiring }
    }

    /// The scalar `0` — additive identity, entry value of 𝕆.
    pub fn zero(&self) -> S::Value {
        self.semiring.zero()
    }

    /// The scalar `1` — ⊗ identity, entry value of the all-ones array `1`
    /// and of the diagonal of `𝕀`.
    pub fn one(&self) -> S::Value {
        self.semiring.one()
    }

    /// Element-wise addition ⊕ at the scalar level.
    pub fn add(&self, a: S::Value, b: S::Value) -> S::Value {
        self.semiring.add(a, b)
    }

    /// Element-wise multiplication ⊗ at the scalar level.
    pub fn mul(&self, a: S::Value, b: S::Value) -> S::Value {
        self.semiring.mul(a, b)
    }

    /// One fused multiply-add step of ⊕.⊗: `acc ⊕ (a ⊗ b)`.
    pub fn fma(&self, acc: S::Value, a: S::Value, b: S::Value) -> S::Value {
        let p = self.semiring.mul(a, b);
        self.semiring.add(acc, p)
    }
}

/// The §V.C **DNN semiring pair**: ReLU inference as a linear system
/// oscillating between `S₁ = (ℝ, +, ×, 0, 1)` and
/// `S₂ = (ℝ ∪ −∞, max, +, −∞, 0)`:
///
/// ```text
/// y_{k+1} = y_k W_k ⊗ b_k ⊕ 0        (⊗, ⊕ taken in S₂ = max.+)
///         = max(y_k W_k + b_k, 0)    (ordinary notation)
/// ```
///
/// `y_k W_k` is an `S₁` array product; the bias application `⊗ b_k` and
/// the rectification `⊕ 0` are `S₂` operations. The struct packages both
/// semirings so DNN kernels can name the pair as one object.
#[derive(Copy, Clone, Debug, Default)]
pub struct DnnSemiringPair {
    /// `S₁`: standard arithmetic, used for the weight product.
    pub correlate: PlusTimes<f64>,
    /// `S₂`: max-plus, used for bias and rectification.
    pub select: MaxPlus<f64>,
}

impl DnnSemiringPair {
    /// The full scalar inference step for one accumulated product `ywa`
    /// (an entry of `y_k W_k`) and bias `b`:
    /// `(ywa ⊗ b) ⊕ 0 = max(ywa + b, 0)` in `S₂`.
    #[inline(always)]
    pub fn bias_relu(&self, ywa: f64, b: f64) -> f64 {
        self.select.add(self.select.mul(ywa, b), 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semirings::MinPlus;

    #[test]
    fn semilink_exposes_scalar_semiring() {
        let l = Semilink::new(PlusTimes::<i64>::new());
        assert_eq!(l.zero(), 0);
        assert_eq!(l.one(), 1);
        assert_eq!(l.add(2, 3), 5);
        assert_eq!(l.mul(2, 3), 6);
        assert_eq!(l.fma(10, 2, 3), 16);
    }

    #[test]
    fn tropical_semilink_fma_relaxes_paths() {
        let l = Semilink::new(MinPlus::<f64>::new());
        // best-so-far 7, new route 2+3=5 → 5.
        assert_eq!(l.fma(7.0, 2.0, 3.0), 5.0);
    }

    #[test]
    fn dnn_pair_matches_relu_formula() {
        let p = DnnSemiringPair::default();
        assert_eq!(p.bias_relu(2.0, -0.5), 1.5); // max(2-0.5, 0)
        assert_eq!(p.bias_relu(-2.0, 0.5), 0.0); // rectified
        assert_eq!(p.bias_relu(0.0, 0.0), 0.0);
    }

    #[test]
    fn dnn_pair_is_two_distinct_semirings() {
        let p = DnnSemiringPair::default();
        // Same scalar inputs, different answers under S1 vs S2 "mul":
        assert_eq!(p.correlate.mul(2.0, 3.0), 6.0); // ×
        assert_eq!(p.select.mul(2.0, 3.0), 5.0); // +
        assert_eq!(p.correlate.zero(), 0.0);
        assert_eq!(p.select.zero(), f64::NEG_INFINITY);
    }
}
