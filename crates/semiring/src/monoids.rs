//! Stand-alone commutative monoids for reductions.
//!
//! The paper's projection identity `C = A ⊕.⊗ 1 ⟹ C(k₁,:) = ⊕_{k₂} A(k₁,k₂)`
//! (§IV) is a row reduction; these monoids are what `reduce_rows`,
//! `reduce_cols`, and `reduce_scalar` take.

use crate::numeric::Numeric;
use crate::pset::PSet;
use crate::traits::Monoid;

/// `(T, +, 0)`.
#[derive(Copy, Clone, Debug, Default)]
pub struct PlusMonoid<T>(std::marker::PhantomData<T>);
impl<T: Numeric> Monoid<T> for PlusMonoid<T> {
    fn identity(&self) -> T {
        T::ZERO
    }
    #[inline(always)]
    fn combine(&self, a: T, b: T) -> T {
        T::plus(a, b)
    }
}

/// `(T, ×, 1)`.
#[derive(Copy, Clone, Debug, Default)]
pub struct TimesMonoid<T>(std::marker::PhantomData<T>);
impl<T: Numeric> Monoid<T> for TimesMonoid<T> {
    fn identity(&self) -> T {
        T::ONE
    }
    #[inline(always)]
    fn combine(&self, a: T, b: T) -> T {
        T::times(a, b)
    }
}

/// `(T, min, +∞)`.
#[derive(Copy, Clone, Debug, Default)]
pub struct MinMonoid<T>(std::marker::PhantomData<T>);
impl<T: Numeric> Monoid<T> for MinMonoid<T> {
    fn identity(&self) -> T {
        T::MAX_VALUE
    }
    #[inline(always)]
    fn combine(&self, a: T, b: T) -> T {
        T::min_of(a, b)
    }
}

/// `(T, max, −∞)`.
#[derive(Copy, Clone, Debug, Default)]
pub struct MaxMonoid<T>(std::marker::PhantomData<T>);
impl<T: Numeric> Monoid<T> for MaxMonoid<T> {
    fn identity(&self) -> T {
        T::MIN_VALUE
    }
    #[inline(always)]
    fn combine(&self, a: T, b: T) -> T {
        T::max_of(a, b)
    }
}

/// `(bool, ∨, false)`.
#[derive(Copy, Clone, Debug, Default)]
pub struct LorMonoid;
impl Monoid<bool> for LorMonoid {
    fn identity(&self) -> bool {
        false
    }
    #[inline(always)]
    fn combine(&self, a: bool, b: bool) -> bool {
        a || b
    }
}

/// `(bool, ∧, true)`.
#[derive(Copy, Clone, Debug, Default)]
pub struct LandMonoid;
impl Monoid<bool> for LandMonoid {
    fn identity(&self) -> bool {
        true
    }
    #[inline(always)]
    fn combine(&self, a: bool, b: bool) -> bool {
        a && b
    }
}

/// `(𝒫(𝕍), ∪, ∅)` — the additive monoid of the relational semiring.
#[derive(Copy, Clone, Debug, Default)]
pub struct UnionMonoid;
impl Monoid<PSet> for UnionMonoid {
    fn identity(&self) -> PSet {
        PSet::empty()
    }
    fn combine(&self, a: PSet, b: PSet) -> PSet {
        a.union(&b)
    }
    fn is_identity(&self, v: &PSet) -> bool {
        v.is_empty()
    }
}

/// `(𝒫(𝕍), ∩, 𝒫(𝕍))` — the multiplicative monoid of the relational
/// semiring; the identity is the full universe.
#[derive(Copy, Clone, Debug, Default)]
pub struct IntersectMonoid;
impl Monoid<PSet> for IntersectMonoid {
    fn identity(&self) -> PSet {
        PSet::universe()
    }
    fn combine(&self, a: PSet, b: PSet) -> PSet {
        a.intersect(&b)
    }
    fn is_identity(&self, v: &PSet) -> bool {
        v.is_universe()
    }
}

/// `(T, any, ·)` — GraphBLAS `GxB_ANY`: returns either operand. Valid as a
/// reduction monoid whenever *which* surviving value is immaterial (pure
/// reachability). Deterministic here: keeps the left operand.
#[derive(Copy, Clone, Debug, Default)]
pub struct AnyMonoid<T: Copy>(pub T);
impl<T: Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static> Monoid<T> for AnyMonoid<T> {
    fn identity(&self) -> T {
        self.0
    }
    #[inline(always)]
    fn combine(&self, a: T, b: T) -> T {
        if a == self.0 {
            b
        } else {
            a
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_monoids() {
        assert_eq!(PlusMonoid::<i64>::default().combine(2, 3), 5);
        assert_eq!(TimesMonoid::<i64>::default().combine(2, 3), 6);
        assert_eq!(MinMonoid::<i64>::default().identity(), i64::MAX);
        assert_eq!(MaxMonoid::<f64>::default().identity(), f64::NEG_INFINITY);
        assert_eq!(MinMonoid::<f64>::default().combine(2.0, 3.0), 2.0);
    }

    #[test]
    fn boolean_monoids() {
        assert!(LorMonoid.combine(false, true));
        assert!(!LandMonoid.combine(false, true));
        assert!(!LorMonoid.identity());
        assert!(LandMonoid.identity());
    }

    #[test]
    fn set_monoids() {
        let a = PSet::from_iter([1, 2]);
        let b = PSet::from_iter([2, 3]);
        assert_eq!(
            UnionMonoid.combine(a.clone(), b.clone()),
            PSet::from_iter([1, 2, 3])
        );
        assert_eq!(IntersectMonoid.combine(a, b), PSet::from_iter([2]));
        assert!(UnionMonoid.is_identity(&PSet::empty()));
        assert!(IntersectMonoid.is_identity(&PSet::universe()));
    }

    #[test]
    fn any_monoid_keeps_first_nonidentity() {
        let m = AnyMonoid(0u32);
        assert_eq!(m.combine(0, 7), 7);
        assert_eq!(m.combine(5, 7), 5);
    }
}
