//! Core algebraic traits in the GraphBLAS operator-object style.
//!
//! All operator traits are implemented by `Copy` (typically zero-sized)
//! structs that are passed *by value* into kernels. This keeps inner loops
//! free of dynamic dispatch: a `mxm` instantiated with [`super::MinPlus`]
//! compiles down to `min`/`+` instructions.

use std::fmt::Debug;

/// Values an associative array can hold.
///
/// Deliberately minimal: clone-able, comparable for equality (needed to
/// recognize the semiring zero and to test determinism), printable, and
/// shareable across threads. Numbers, booleans, interned strings, and
/// power sets ([`super::PSet`]) all qualify.
pub trait Value: Clone + PartialEq + Debug + Send + Sync + 'static {}
impl<T: Clone + PartialEq + Debug + Send + Sync + 'static> Value for T {}

/// A binary operator `A × B → C`.
///
/// Most operators are homogeneous (`A = B = C`), but GraphBLAS-style
/// multiply operators such as [`super::First`] and [`super::Pair`] exploit
/// the general form.
pub trait BinaryOp<A, B = A, C = A>: Copy + Send + Sync {
    /// Apply the operator.
    fn apply(&self, a: A, b: B) -> C;
}

/// A unary operator `A → C` (GraphBLAS `GrB_UnaryOp`).
pub trait UnaryOp<A, C = A>: Copy + Send + Sync {
    /// Apply the operator.
    fn apply(&self, a: A) -> C;
}

/// A commutative monoid `(V, ∘, id)`: an associative, commutative binary
/// operation with identity. Monoids drive reductions (`reduce_rows`,
/// `reduce_scalar`) and the ⊕ half of a semiring.
pub trait Monoid<T: Value>: Copy + Send + Sync {
    /// The identity element `id` with `combine(id, a) = a`.
    fn identity(&self) -> T;
    /// The monoid operation. Must be associative and commutative.
    fn combine(&self, a: T, b: T) -> T;
    /// `true` if `v` is the identity. Override when a cheaper test than
    /// construction + comparison exists.
    fn is_identity(&self, v: &T) -> bool {
        *v == self.identity()
    }
}

/// A semiring `(V, ⊕, ⊗, 0, 1)`.
///
/// Laws (checked mechanically by [`crate::laws`] and the proptest suite):
///
/// * `(V, ⊕, 0)` is a commutative monoid;
/// * `(V, ⊗, 1)` is a monoid (not necessarily commutative);
/// * `⊗` distributes over `⊕` on both sides;
/// * `0` annihilates: `a ⊗ 0 = 0 ⊗ a = 0`.
///
/// The last law is what lets sparse kernels *not store* zeros: any product
/// against an absent entry contributes nothing to a sum.
pub trait Semiring: Copy + Send + Sync + 'static {
    /// The value set `V`.
    type Value: Value;

    /// The additive identity `0` (and multiplicative annihilator).
    fn zero(&self) -> Self::Value;
    /// The multiplicative identity `1`.
    fn one(&self) -> Self::Value;
    /// `a ⊕ b`.
    fn add(&self, a: Self::Value, b: Self::Value) -> Self::Value;
    /// `a ⊗ b`.
    fn mul(&self, a: Self::Value, b: Self::Value) -> Self::Value;

    /// `true` if `v` is the semiring `0`. Sparse kernels drop such entries,
    /// which is how, e.g., min-plus matrices avoid storing `+∞`.
    fn is_zero(&self, v: &Self::Value) -> bool {
        *v == self.zero()
    }

    /// `true` if `v` is the semiring `1`.
    fn is_one(&self, v: &Self::Value) -> bool {
        *v == self.one()
    }

    /// Fold `a ⊕= b` in place. Kernels call this in inner loops; the
    /// default is fine for `Copy` values, but set-valued semirings can
    /// override it to reuse allocations.
    fn add_assign(&self, a: &mut Self::Value, b: Self::Value) {
        let old = std::mem::replace(a, self.zero());
        *a = self.add(old, b);
    }
}

/// View the additive structure of a semiring as a monoid, so reduction
/// kernels can be written once over [`Monoid`].
#[derive(Copy, Clone, Debug, Default)]
pub struct AddMonoidOf<S: Semiring>(pub S);

impl<S: Semiring> Monoid<S::Value> for AddMonoidOf<S> {
    fn identity(&self) -> S::Value {
        self.0.zero()
    }
    fn combine(&self, a: S::Value, b: S::Value) -> S::Value {
        self.0.add(a, b)
    }
    fn is_identity(&self, v: &S::Value) -> bool {
        self.0.is_zero(v)
    }
}

/// View the multiplicative structure of a semiring as a monoid.
#[derive(Copy, Clone, Debug, Default)]
pub struct MulMonoidOf<S: Semiring>(pub S);

impl<S: Semiring> Monoid<S::Value> for MulMonoidOf<S> {
    fn identity(&self) -> S::Value {
        self.0.one()
    }
    fn combine(&self, a: S::Value, b: S::Value) -> S::Value {
        self.0.mul(a, b)
    }
    fn is_identity(&self, v: &S::Value) -> bool {
        self.0.is_one(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semirings::PlusTimes;

    #[test]
    fn add_monoid_of_matches_semiring() {
        let s = PlusTimes::<i64>::default();
        let m = AddMonoidOf(s);
        assert_eq!(m.identity(), 0);
        assert_eq!(m.combine(3, 4), 7);
        assert!(m.is_identity(&0));
        assert!(!m.is_identity(&1));
    }

    #[test]
    fn mul_monoid_of_matches_semiring() {
        let s = PlusTimes::<i64>::default();
        let m = MulMonoidOf(s);
        assert_eq!(m.identity(), 1);
        assert_eq!(m.combine(3, 4), 12);
        assert!(m.is_identity(&1));
    }

    #[test]
    fn add_assign_default_folds() {
        let s = PlusTimes::<i64>::default();
        let mut a = 10;
        s.add_assign(&mut a, 5);
        assert_eq!(a, 15);
    }
}
