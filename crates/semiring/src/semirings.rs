//! The semirings of Table I, plus the graph-analytic auxiliaries.
//!
//! | Set            | ⊕    | ⊗    | 0    | 1     | type              |
//! |----------------|------|------|------|-------|-------------------|
//! | ℝ              | +    | ×    | 0    | 1     | [`PlusTimes`]     |
//! | ℝ ∪ −∞         | max  | +    | −∞   | 0     | [`MaxPlus`]       |
//! | ℝ ∪ +∞         | min  | +    | +∞   | 0     | [`MinPlus`]       |
//! | ℝ≥0            | max  | ×    | 0    | 1     | [`MaxTimes`]      |
//! | ℝ>0 ∪ +∞       | min  | ×    | +∞   | 1     | [`MinTimes`]      |
//! | 𝒫(𝕍)           | ∪    | ∩    | ∅    | 𝒫(𝕍)  | [`UnionIntersect`]|
//! | 𝕍 ∪ −∞         | max  | min  | −∞   | +∞    | [`MaxMin`]        |
//! | 𝕍 ∪ +∞         | min  | max  | +∞   | −∞    | [`MinMax`]        |
//!
//! Each struct is zero-sized; kernels instantiated with one monomorphize
//! to straight-line `min`/`max`/`add`/`mul` code.

use std::marker::PhantomData;

use crate::numeric::Numeric;
use crate::pset::PSet;
use crate::traits::Semiring;

macro_rules! numeric_semiring {
    (
        $(#[$doc:meta])*
        $name:ident, zero = $zero:ident, one = $one:ident,
        add = $add:ident, mul = $mul:ident
    ) => {
        $(#[$doc])*
        #[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
        pub struct $name<T>(PhantomData<T>);

        impl<T> $name<T> {
            /// Construct the (zero-sized) semiring object.
            pub fn new() -> Self {
                $name(PhantomData)
            }
        }

        impl<T: Numeric> Semiring for $name<T> {
            type Value = T;

            #[inline(always)]
            fn zero(&self) -> T {
                T::$zero
            }
            #[inline(always)]
            fn one(&self) -> T {
                T::$one
            }
            #[inline(always)]
            fn add(&self, a: T, b: T) -> T {
                T::$add(a, b)
            }
            #[inline(always)]
            fn mul(&self, a: T, b: T) -> T {
                T::$mul(a, b)
            }
        }
    };
}

numeric_semiring!(
    /// Standard arithmetic `(ℝ, +, ×, 0, 1)` — correlation, counting,
    /// the `S₁` of the paper's DNN decomposition (§V.C).
    PlusTimes, zero = ZERO, one = ONE, add = plus, mul = times
);

numeric_semiring!(
    /// Tropical `(ℝ ∪ −∞, max, +, −∞, 0)` — longest/critical paths; the
    /// `S₂` the ReLU DNN oscillates into (§V.C).
    MaxPlus, zero = MIN_VALUE, one = ZERO, add = max_of, mul = plus
);

numeric_semiring!(
    /// Tropical `(ℝ ∪ +∞, min, +, +∞, 0)` — shortest paths.
    MinPlus, zero = MAX_VALUE, one = ZERO, add = min_of, mul = plus
);

numeric_semiring!(
    /// `(ℝ≥0, max, ×, 0, 1)` — maximum-reliability paths. Only a semiring
    /// on the non-negative reals (negative values break distributivity);
    /// callers must feed it ℝ≥0 data, which the law suite enforces.
    MaxTimes, zero = ZERO, one = ONE, add = max_of, mul = times
);

numeric_semiring!(
    /// `(ℝ>0 ∪ +∞, min, ×, +∞, 1)` — minimum-product paths on positive
    /// data.
    MinTimes, zero = MAX_VALUE, one = ONE, add = min_of, mul = times
);

numeric_semiring!(
    /// `(𝕍 ∪ −∞, max, min, −∞, +∞)` — bottleneck (widest-path) algebra.
    MaxMin, zero = MIN_VALUE, one = MAX_VALUE, add = max_of, mul = min_of
);

numeric_semiring!(
    /// `(𝕍 ∪ +∞, min, max, +∞, −∞)` — the order dual of [`MaxMin`].
    MinMax, zero = MAX_VALUE, one = MIN_VALUE, add = min_of, mul = max_of
);

/// The relational-algebra semiring `(𝒫(𝕍), ∪, ∩, ∅, 𝒫(𝕍))` over lazy
/// power-set values ([`PSet`]). §V.B expresses the SQL `select` in the
/// semilink this semiring generates.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct UnionIntersect;

impl Semiring for UnionIntersect {
    type Value = PSet;

    fn zero(&self) -> PSet {
        PSet::empty()
    }
    fn one(&self) -> PSet {
        PSet::universe()
    }
    fn add(&self, a: PSet, b: PSet) -> PSet {
        a.union(&b)
    }
    fn mul(&self, a: PSet, b: PSet) -> PSet {
        a.intersect(&b)
    }
    fn is_zero(&self, v: &PSet) -> bool {
        v.is_empty()
    }
    fn is_one(&self, v: &PSet) -> bool {
        v.is_universe()
    }
}

/// Boolean `(𝔹, ∨, ∧, false, true)` — pure topology: breadth-first
/// search, reachability, sparsity-pattern manipulation.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LorLand;

impl Semiring for LorLand {
    type Value = bool;

    #[inline(always)]
    fn zero(&self) -> bool {
        false
    }
    #[inline(always)]
    fn one(&self) -> bool {
        true
    }
    #[inline(always)]
    fn add(&self, a: bool, b: bool) -> bool {
        a || b
    }
    #[inline(always)]
    fn mul(&self, a: bool, b: bool) -> bool {
        a && b
    }
}

/// GF(2): `(𝔹, ⊕ = xor, ⊗ = and, false, true)` — a genuine *field*, so
/// every semiring law holds exactly. The algebra of cycle spaces and
/// parity constraints; also the canonical example that ⊕ need not be
/// idempotent (unlike ∨).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct XorAnd;

impl Semiring for XorAnd {
    type Value = bool;

    #[inline(always)]
    fn zero(&self) -> bool {
        false
    }
    #[inline(always)]
    fn one(&self) -> bool {
        true
    }
    #[inline(always)]
    fn add(&self, a: bool, b: bool) -> bool {
        a ^ b
    }
    #[inline(always)]
    fn mul(&self, a: bool, b: bool) -> bool {
        a && b
    }
}

/// `min.first` over ids shifted by one: `0` is the semiring zero
/// ("no value"), ids are `1..`. `mul(a, _) = a` carries the *source*
/// value through, `add = min` picks a deterministic winner — the parent
/// tracking semiring for BFS trees.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MinFirst;

impl Semiring for MinFirst {
    type Value = u64;

    #[inline(always)]
    fn zero(&self) -> u64 {
        0
    }
    #[inline(always)]
    fn one(&self) -> u64 {
        u64::MAX
    }
    #[inline(always)]
    fn add(&self, a: u64, b: u64) -> u64 {
        // min over "present" values; 0 means absent.
        match (a, b) {
            (0, x) | (x, 0) => x,
            (x, y) => x.min(y),
        }
    }
    #[inline(always)]
    fn mul(&self, a: u64, b: u64) -> u64 {
        // first, with 0 annihilating from either side.
        if b == 0 {
            0
        } else {
            a
        }
    }
}

/// `max.first` — the order dual of [`MinFirst`]: `add = max` picks the
/// *largest* present id, `mul(a, _) = a` still carries the source value.
/// Ships as a second qualifying parent-selection algebra for the
/// one-step BFS conditions ([`crate::onestep`]): like [`MinFirst`] its ⊕
/// is selective and its ⊗ is a left carrier, but the tie-break order is
/// reversed, so fused and two-step BFS agreeing under *both* orders is
/// evidence the selection machinery (not a lucky ordering) is correct.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MaxFirst;

impl Semiring for MaxFirst {
    type Value = u64;

    #[inline(always)]
    fn zero(&self) -> u64 {
        0
    }
    #[inline(always)]
    fn one(&self) -> u64 {
        u64::MAX
    }
    #[inline(always)]
    fn add(&self, a: u64, b: u64) -> u64 {
        // max over "present" values; 0 means absent (and is the minimum,
        // so plain max already treats it as the identity).
        a.max(b)
    }
    #[inline(always)]
    fn mul(&self, a: u64, b: u64) -> u64 {
        if b == 0 {
            0
        } else {
            a
        }
    }
}

/// `min.second` — the mirror of [`MinFirst`]: carries the *matrix* value.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MinSecond;

impl Semiring for MinSecond {
    type Value = u64;

    #[inline(always)]
    fn zero(&self) -> u64 {
        0
    }
    #[inline(always)]
    fn one(&self) -> u64 {
        u64::MAX
    }
    #[inline(always)]
    fn add(&self, a: u64, b: u64) -> u64 {
        match (a, b) {
            (0, x) | (x, 0) => x,
            (x, y) => x.min(y),
        }
    }
    #[inline(always)]
    fn mul(&self, a: u64, b: u64) -> u64 {
        if a == 0 {
            0
        } else {
            b
        }
    }
}

/// `any.pair` (GraphBLAS `GxB_ANY_PAIR`) over `u8` flags: every product is
/// `1`, sums pick either operand. The cheapest possible reachability
/// semiring — no value is even read. Deterministic: `add` keeps the left
/// non-zero operand.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AnyPair;

impl Semiring for AnyPair {
    type Value = u8;

    #[inline(always)]
    fn zero(&self) -> u8 {
        0
    }
    #[inline(always)]
    fn one(&self) -> u8 {
        1
    }
    #[inline(always)]
    fn add(&self, a: u8, b: u8) -> u8 {
        if a != 0 {
            a
        } else {
            b
        }
    }
    #[inline(always)]
    fn mul(&self, a: u8, b: u8) -> u8 {
        // pair: 1 whenever both entries exist; absent (0) annihilates.
        if a != 0 && b != 0 {
            1
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_times_basics() {
        let s = PlusTimes::<f64>::new();
        assert_eq!(s.add(2.0, 3.0), 5.0);
        assert_eq!(s.mul(2.0, 3.0), 6.0);
        assert!(s.is_zero(&0.0));
        assert!(s.is_one(&1.0));
    }

    #[test]
    fn tropical_identities_match_table_i() {
        let mp = MinPlus::<f64>::new();
        assert_eq!(mp.zero(), f64::INFINITY);
        assert_eq!(mp.one(), 0.0);
        let xp = MaxPlus::<f64>::new();
        assert_eq!(xp.zero(), f64::NEG_INFINITY);
        assert_eq!(xp.one(), 0.0);
        let mt = MinTimes::<f64>::new();
        assert_eq!(mt.zero(), f64::INFINITY);
        assert_eq!(mt.one(), 1.0);
        let xt = MaxTimes::<f64>::new();
        assert_eq!(xt.zero(), 0.0);
        assert_eq!(xt.one(), 1.0);
        let mm = MaxMin::<i64>::new();
        assert_eq!(mm.zero(), i64::MIN);
        assert_eq!(mm.one(), i64::MAX);
        let nm = MinMax::<i64>::new();
        assert_eq!(nm.zero(), i64::MAX);
        assert_eq!(nm.one(), i64::MIN);
    }

    #[test]
    fn zero_annihilates_in_tropicals() {
        let mp = MinPlus::<f64>::new();
        assert_eq!(mp.mul(mp.zero(), 5.0), f64::INFINITY);
        let xp = MaxPlus::<f64>::new();
        assert_eq!(xp.mul(xp.zero(), 5.0), f64::NEG_INFINITY);
    }

    #[test]
    fn shortest_path_relaxation() {
        let s = MinPlus::<f64>::new();
        // Two routes: 1+2 and 4+0.5 — min is 3.
        let d = s.add(s.mul(1.0, 2.0), s.mul(4.0, 0.5));
        assert_eq!(d, 3.0);
    }

    #[test]
    fn union_intersect_semiring() {
        let s = UnionIntersect;
        let a = PSet::from_iter([1, 2]);
        let b = PSet::from_iter([2, 3]);
        assert_eq!(s.add(a.clone(), b.clone()), PSet::from_iter([1, 2, 3]));
        assert_eq!(s.mul(a.clone(), b), PSet::singleton(2));
        assert!(s.is_zero(&PSet::empty()));
        assert!(s.is_one(&PSet::universe()));
        // 0 annihilates ⊗, 1 is ⊗-identity.
        assert!(s.mul(a.clone(), s.zero()).is_empty());
        assert_eq!(s.mul(a.clone(), s.one()), a);
    }

    #[test]
    fn lor_land_truth_table() {
        let s = LorLand;
        assert!(s.add(false, true));
        assert!(!s.add(false, false));
        assert!(s.mul(true, true));
        assert!(!s.mul(true, false));
    }

    #[test]
    fn xor_and_is_gf2() {
        let s = XorAnd;
        assert!(!s.add(true, true)); // 1 ⊕ 1 = 0: non-idempotent ⊕
        assert!(s.add(true, false));
        assert!(s.mul(true, true));
        assert!(!s.mul(true, false));
    }

    #[test]
    fn min_first_tracks_sources() {
        let s = MinFirst;
        // Frontier carries vertex ids (1-based); matrix entries are 1.
        // q(j) = add over i of mul(f(i), A(i,j)).
        let from3 = s.mul(3, 1);
        let from7 = s.mul(7, 1);
        assert_eq!(s.add(from3, from7), 3); // min parent id wins
        assert_eq!(s.mul(3, 0), 0); // absent edge annihilates
        assert_eq!(s.add(0, 7), 7); // absent contribution is identity
    }

    #[test]
    fn max_first_tracks_largest_source() {
        let s = MaxFirst;
        let from3 = s.mul(3, 1);
        let from7 = s.mul(7, 1);
        assert_eq!(s.add(from3, from7), 7); // max parent id wins
        assert_eq!(s.mul(3, 0), 0); // absent edge annihilates
        assert_eq!(s.add(0, 7), 7); // absent contribution is identity
    }

    #[test]
    fn min_second_carries_matrix_values() {
        let s = MinSecond;
        assert_eq!(s.mul(9, 4), 4);
        assert_eq!(s.mul(0, 4), 0);
        assert_eq!(s.add(5, 2), 2);
    }

    #[test]
    fn any_pair_reachability() {
        let s = AnyPair;
        assert_eq!(s.mul(1, 1), 1);
        assert_eq!(s.mul(1, 0), 0);
        assert_eq!(s.add(0, 1), 1);
        assert_eq!(s.add(1, 1), 1);
    }
}
