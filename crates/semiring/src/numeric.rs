//! Numeric value abstraction shared by all Table I semirings.
//!
//! Table I of the paper instantiates its semirings over ℝ (optionally
//! extended with ±∞) and over arbitrary totally ordered sets 𝕍. Floating
//! point has genuine ±∞; integers use their saturating extremes, with
//! saturating arithmetic so that `MIN/MAX` really behave as absorbing
//! infinities under tropical `+`.

/// Scalar number usable in the numeric semirings of Table I.
///
/// `MIN_VALUE`/`MAX_VALUE` play the roles of −∞/+∞ in the extended reals:
/// they must be absorbing under [`Numeric::plus`] (hence saturating
/// integer arithmetic) so that e.g. `min.+` path relaxation through an
/// "unreached" (+∞) vertex stays unreached.
pub trait Numeric:
    Copy + PartialEq + PartialOrd + std::fmt::Debug + std::fmt::Display + Send + Sync + 'static
{
    /// Additive identity of ordinary arithmetic.
    const ZERO: Self;
    /// Multiplicative identity of ordinary arithmetic.
    const ONE: Self;
    /// The −∞ element (minimum of the value set).
    const MIN_VALUE: Self;
    /// The +∞ element (maximum of the value set).
    const MAX_VALUE: Self;

    /// Arithmetic `a + b`, saturating at ±∞.
    fn plus(a: Self, b: Self) -> Self;
    /// Arithmetic `a × b`, saturating at ±∞.
    fn times(a: Self, b: Self) -> Self;
    /// `min(a, b)` under the total order.
    fn min_of(a: Self, b: Self) -> Self;
    /// `max(a, b)` under the total order.
    fn max_of(a: Self, b: Self) -> Self;
}

macro_rules! impl_numeric_float {
    ($($t:ty),*) => {$(
        impl Numeric for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const MIN_VALUE: Self = <$t>::NEG_INFINITY;
            const MAX_VALUE: Self = <$t>::INFINITY;

            #[inline(always)]
            fn plus(a: Self, b: Self) -> Self { a + b }
            #[inline(always)]
            fn times(a: Self, b: Self) -> Self { a * b }
            #[inline(always)]
            fn min_of(a: Self, b: Self) -> Self {
                // NaN-free min: propagate the non-NaN operand.
                if a < b || b.is_nan() { a } else { b }
            }
            #[inline(always)]
            fn max_of(a: Self, b: Self) -> Self {
                if a > b || b.is_nan() { a } else { b }
            }
        }
    )*};
}

macro_rules! impl_numeric_int {
    ($($t:ty),*) => {$(
        impl Numeric for $t {
            const ZERO: Self = 0;
            const ONE: Self = 1;
            const MIN_VALUE: Self = <$t>::MIN;
            const MAX_VALUE: Self = <$t>::MAX;

            #[inline(always)]
            fn plus(a: Self, b: Self) -> Self { a.saturating_add(b) }
            #[inline(always)]
            fn times(a: Self, b: Self) -> Self { a.saturating_mul(b) }
            #[inline(always)]
            fn min_of(a: Self, b: Self) -> Self { a.min(b) }
            #[inline(always)]
            fn max_of(a: Self, b: Self) -> Self { a.max(b) }
        }
    )*};
}

impl_numeric_float!(f32, f64);
impl_numeric_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_infinities_absorb_under_plus() {
        assert_eq!(f64::plus(f64::MAX_VALUE, -5.0), f64::INFINITY);
        assert_eq!(f64::plus(f64::MIN_VALUE, 1.0e308), f64::NEG_INFINITY);
    }

    #[test]
    fn int_saturation_mimics_infinity() {
        assert_eq!(i64::plus(i64::MAX_VALUE, 3), i64::MAX);
        assert_eq!(i64::plus(i64::MIN_VALUE, -3), i64::MIN);
        assert_eq!(u32::plus(u32::MAX_VALUE, 1), u32::MAX);
    }

    #[test]
    fn min_max_are_total_on_floats_with_nan() {
        assert_eq!(f64::min_of(1.0, f64::NAN), 1.0);
        assert_eq!(f64::max_of(f64::NAN, 2.0), 2.0);
    }

    #[test]
    fn ordinary_arithmetic() {
        assert_eq!(i32::times(6, 7), 42);
        assert_eq!(f32::plus(1.5, 2.5), 4.0);
        assert_eq!(u64::min_of(3, 9), 3);
        assert_eq!(u64::max_of(3, 9), 9);
    }
}
