//! Executable semiring laws.
//!
//! The paper leans on four properties of semirings (§I): the distributive
//! property (reordering for parallelism), the additive identity, the
//! multiplicative annihilator (both enabling sparsity), and
//! associativity/commutativity (query planning). Each function here checks
//! one law on concrete values and returns `bool`, so both unit tests and
//! the proptest suites of every downstream crate can share them.
//!
//! Floating-point caveat: ordinary `+.×` on floats is only *approximately*
//! associative/distributive. The checkers accept an equality predicate so
//! float suites can pass an epsilon comparison while exact value sets
//! (integers, booleans, sets, tropical min/max which are exact on floats)
//! use `==`.

use crate::traits::{Monoid, Semiring};

/// Check every semiring law at once on a triple of sample values.
/// `eq` decides value equality (pass `|a, b| a == b` for exact sets).
pub fn semiring_laws<S, F>(s: &S, a: S::Value, b: S::Value, c: S::Value, eq: F) -> bool
where
    S: Semiring,
    F: Fn(&S::Value, &S::Value) -> bool,
{
    add_associative(s, a.clone(), b.clone(), c.clone(), &eq)
        && add_commutative(s, a.clone(), b.clone(), &eq)
        && add_identity(s, a.clone(), &eq)
        && mul_associative(s, a.clone(), b.clone(), c.clone(), &eq)
        && mul_identity(s, a.clone(), &eq)
        && annihilator(s, a.clone(), &eq)
        && distributive_left(s, a.clone(), b.clone(), c.clone(), &eq)
        && distributive_right(s, a, b, c, &eq)
}

/// `(a ⊕ b) ⊕ c = a ⊕ (b ⊕ c)`.
pub fn add_associative<S, F>(s: &S, a: S::Value, b: S::Value, c: S::Value, eq: &F) -> bool
where
    S: Semiring,
    F: Fn(&S::Value, &S::Value) -> bool,
{
    let lhs = s.add(s.add(a.clone(), b.clone()), c.clone());
    let rhs = s.add(a, s.add(b, c));
    eq(&lhs, &rhs)
}

/// `a ⊕ b = b ⊕ a`.
pub fn add_commutative<S, F>(s: &S, a: S::Value, b: S::Value, eq: &F) -> bool
where
    S: Semiring,
    F: Fn(&S::Value, &S::Value) -> bool,
{
    eq(&s.add(a.clone(), b.clone()), &s.add(b, a))
}

/// `a ⊕ 0 = 0 ⊕ a = a`.
pub fn add_identity<S, F>(s: &S, a: S::Value, eq: &F) -> bool
where
    S: Semiring,
    F: Fn(&S::Value, &S::Value) -> bool,
{
    eq(&s.add(a.clone(), s.zero()), &a) && eq(&s.add(s.zero(), a.clone()), &a)
}

/// `(a ⊗ b) ⊗ c = a ⊗ (b ⊗ c)`.
pub fn mul_associative<S, F>(s: &S, a: S::Value, b: S::Value, c: S::Value, eq: &F) -> bool
where
    S: Semiring,
    F: Fn(&S::Value, &S::Value) -> bool,
{
    let lhs = s.mul(s.mul(a.clone(), b.clone()), c.clone());
    let rhs = s.mul(a, s.mul(b, c));
    eq(&lhs, &rhs)
}

/// `a ⊗ 1 = 1 ⊗ a = a`.
pub fn mul_identity<S, F>(s: &S, a: S::Value, eq: &F) -> bool
where
    S: Semiring,
    F: Fn(&S::Value, &S::Value) -> bool,
{
    eq(&s.mul(a.clone(), s.one()), &a) && eq(&s.mul(s.one(), a.clone()), &a)
}

/// `a ⊗ 0 = 0 ⊗ a = 0` — the property that lets sparse kernels skip
/// absent entries.
pub fn annihilator<S, F>(s: &S, a: S::Value, eq: &F) -> bool
where
    S: Semiring,
    F: Fn(&S::Value, &S::Value) -> bool,
{
    eq(&s.mul(a.clone(), s.zero()), &s.zero()) && eq(&s.mul(s.zero(), a), &s.zero())
}

/// `a ⊗ (b ⊕ c) = (a ⊗ b) ⊕ (a ⊗ c)` — the §I headline property.
pub fn distributive_left<S, F>(s: &S, a: S::Value, b: S::Value, c: S::Value, eq: &F) -> bool
where
    S: Semiring,
    F: Fn(&S::Value, &S::Value) -> bool,
{
    let lhs = s.mul(a.clone(), s.add(b.clone(), c.clone()));
    let rhs = s.add(s.mul(a.clone(), b), s.mul(a, c));
    eq(&lhs, &rhs)
}

/// `(b ⊕ c) ⊗ a = (b ⊗ a) ⊕ (c ⊗ a)`.
pub fn distributive_right<S, F>(s: &S, a: S::Value, b: S::Value, c: S::Value, eq: &F) -> bool
where
    S: Semiring,
    F: Fn(&S::Value, &S::Value) -> bool,
{
    let lhs = s.mul(s.add(b.clone(), c.clone()), a.clone());
    let rhs = s.add(s.mul(b, a.clone()), s.mul(c, a));
    eq(&lhs, &rhs)
}

/// Monoid laws: associativity, commutativity, identity.
pub fn monoid_laws<T, M, F>(m: &M, a: T, b: T, c: T, eq: F) -> bool
where
    T: crate::traits::Value,
    M: Monoid<T>,
    F: Fn(&T, &T) -> bool,
{
    let assoc = {
        let lhs = m.combine(m.combine(a.clone(), b.clone()), c.clone());
        let rhs = m.combine(a.clone(), m.combine(b.clone(), c.clone()));
        eq(&lhs, &rhs)
    };
    let comm = eq(&m.combine(a.clone(), b.clone()), &m.combine(b, a.clone()));
    let ident = eq(&m.combine(a.clone(), m.identity()), &a);
    assoc && comm && ident
}

/// Exact equality predicate for value sets where the laws hold exactly.
pub fn exact<T: PartialEq>(a: &T, b: &T) -> bool {
    a == b
}

/// Relative-epsilon equality for ordinary float arithmetic, where
/// associativity/distributivity only hold approximately.
pub fn approx(eps: f64) -> impl Fn(&f64, &f64) -> bool {
    move |a, b| {
        if a == b {
            return true;
        }
        if a.is_infinite() || b.is_infinite() {
            // unequal infinities (or one finite, one infinite)
            return false;
        }
        let scale = a.abs().max(b.abs()).max(1.0);
        (a - b).abs() <= eps * scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoids::{MaxMonoid, PlusMonoid};
    use crate::pset::PSet;
    use crate::semirings::{LorLand, MaxMin, MinPlus, PlusTimes, UnionIntersect};

    #[test]
    fn integer_plus_times_satisfies_all_laws() {
        let s = PlusTimes::<i64>::new();
        assert!(semiring_laws(&s, 3, -7, 11, exact));
    }

    #[test]
    fn min_plus_satisfies_all_laws_exactly_on_floats() {
        let s = MinPlus::<f64>::new();
        assert!(semiring_laws(&s, 1.5, -2.25, 7.0, exact));
        assert!(semiring_laws(&s, f64::INFINITY, 0.0, -3.0, exact));
    }

    #[test]
    fn max_min_satisfies_all_laws() {
        let s = MaxMin::<i64>::new();
        assert!(semiring_laws(&s, 3, 9, -4, exact));
    }

    #[test]
    fn union_intersect_satisfies_all_laws() {
        let s = UnionIntersect;
        let a = PSet::from_iter([1, 2, 3]);
        let b = PSet::from_iter([2, 4]);
        let c = PSet::universe();
        assert!(semiring_laws(&s, a, b, c, exact));
    }

    #[test]
    fn booleans_satisfy_all_laws() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    assert!(semiring_laws(&LorLand, a, b, c, exact));
                }
            }
        }
    }

    #[test]
    fn float_plus_times_needs_approx_eq() {
        let s = PlusTimes::<f64>::new();
        // Rounding triple: exact distributivity fails on binary floats,
        // approximate equality recovers the law.
        let (a, b, c) = (0.1, 0.2, 0.3);
        // (0.1 + 0.2) + 0.3 != 0.1 + (0.2 + 0.3) in binary floating point.
        assert!(!add_associative(&s, a, b, c, &exact));
        assert!(semiring_laws(&s, a, b, c, approx(1e-9)));
    }

    #[test]
    fn monoid_laws_hold() {
        assert!(monoid_laws(&PlusMonoid::<i64>::default(), 1, 2, 3, exact));
        assert!(monoid_laws(&MaxMonoid::<i64>::default(), -5, 0, 9, exact));
    }

    #[test]
    fn approx_handles_infinities() {
        let eq = approx(1e-12);
        assert!(eq(&f64::INFINITY, &f64::INFINITY));
        assert!(!eq(&f64::INFINITY, &f64::NEG_INFINITY));
        assert!(eq(&1.0, &(1.0 + 1e-15)));
    }
}
