//! Stand-alone unary and binary operators.
//!
//! These are the GraphBLAS-style building blocks that are not themselves
//! semirings: selection multiplicands (`first`, `second`, `pair`) used to
//! assemble path-tracking semirings, and the unary `apply` operators, most
//! importantly the paper's element-wise **zero-norm** `| |₀` which maps
//! every non-zero entry to the semiring `1` (Table II).

use crate::traits::{BinaryOp, Semiring, UnaryOp, Value};

/// `first(a, b) = a` — GraphBLAS `GrB_FIRST`.
#[derive(Copy, Clone, Debug, Default)]
pub struct First;
impl<A, B> BinaryOp<A, B, A> for First {
    #[inline(always)]
    fn apply(&self, a: A, _b: B) -> A {
        a
    }
}

/// `second(a, b) = b` — GraphBLAS `GrB_SECOND`.
#[derive(Copy, Clone, Debug, Default)]
pub struct Second;
impl<A, B> BinaryOp<A, B, B> for Second {
    #[inline(always)]
    fn apply(&self, _a: A, b: B) -> B {
        b
    }
}

/// `pair(a, b) = 1` — GraphBLAS `GxB_PAIR` (a.k.a. `oneb`). The constant
/// is supplied at construction so the operator stays semiring-agnostic.
#[derive(Copy, Clone, Debug)]
pub struct Pair<T: Copy>(pub T);
impl<T: Copy + Send + Sync, A, B> BinaryOp<A, B, T> for Pair<T> {
    #[inline(always)]
    fn apply(&self, _a: A, _b: B) -> T {
        self.0
    }
}

/// The identity unary operator.
#[derive(Copy, Clone, Debug, Default)]
pub struct Identity;
impl<A> UnaryOp<A, A> for Identity {
    #[inline(always)]
    fn apply(&self, a: A) -> A {
        a
    }
}

/// The element-wise zero-norm `| |₀` of Table II: maps every stored
/// (non-zero) value to the semiring `1`, and the semiring `0` to itself.
///
/// Applied to an associative array this produces its *sparsity pattern* in
/// the value set of the target semiring — the `|A|₀ = ℙ` notion the
/// paper's §IV identities are phrased in.
#[derive(Copy, Clone, Debug, Default)]
pub struct ZeroNorm<S: Semiring>(pub S);
impl<S: Semiring> UnaryOp<S::Value, S::Value> for ZeroNorm<S> {
    #[inline(always)]
    fn apply(&self, a: S::Value) -> S::Value {
        if self.0.is_zero(&a) {
            a
        } else {
            self.0.one()
        }
    }
}

/// Rectified linear unit over an ordered value set: `max(a, floor)`.
/// With `floor = 0` this is the DNN ReLU `h(y) = max(y, 0)` of §V.C; the
/// paper observes it is exactly `⊕ 0` in the `max.+` semiring.
#[derive(Copy, Clone, Debug)]
pub struct Relu<T: Copy>(pub T);
impl<T: Copy + PartialOrd + Send + Sync> UnaryOp<T, T> for Relu<T> {
    #[inline(always)]
    fn apply(&self, a: T) -> T {
        if a < self.0 {
            self.0
        } else {
            a
        }
    }
}

/// Wrap an arbitrary `Fn` as a unary operator. Handy for one-off `apply`
/// calls in examples and tests; hot kernels should prefer named ZSTs.
#[derive(Copy, Clone)]
pub struct FnOp<F>(pub F);
impl<A, C, F: Fn(A) -> C + Copy + Send + Sync> UnaryOp<A, C> for FnOp<F> {
    #[inline(always)]
    fn apply(&self, a: A) -> C {
        (self.0)(a)
    }
}

/// Wrap an arbitrary `Fn` as a binary operator.
#[derive(Copy, Clone)]
pub struct FnBinOp<F>(pub F);
impl<A, B, C, F: Fn(A, B) -> C + Copy + Send + Sync> BinaryOp<A, B, C> for FnBinOp<F> {
    #[inline(always)]
    fn apply(&self, a: A, b: B) -> C {
        (self.0)(a, b)
    }
}

/// A binary operator with both inputs and output in one value set —
/// what element-wise array kernels require.
pub trait HomogeneousOp<T: Value>: BinaryOp<T, T, T> {}
impl<T: Value, O: BinaryOp<T, T, T>> HomogeneousOp<T> for O {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semirings::{MinPlus, PlusTimes};

    #[test]
    fn first_second_pair() {
        assert_eq!(First.apply(1, "x"), 1);
        assert_eq!(Second.apply(1, "x"), "x");
        let p: Pair<u8> = Pair(1);
        let v: u8 = p.apply(99i64, "ignored");
        assert_eq!(v, 1);
    }

    #[test]
    fn zero_norm_maps_nonzero_to_one() {
        let z = ZeroNorm(PlusTimes::<f64>::default());
        assert_eq!(z.apply(7.25), 1.0);
        assert_eq!(z.apply(0.0), 0.0);
    }

    #[test]
    fn zero_norm_respects_tropical_zero() {
        // In min-plus the "zero" is +∞ and the "one" is 0.
        let z = ZeroNorm(MinPlus::<f64>::default());
        assert_eq!(z.apply(3.0), 0.0);
        assert_eq!(z.apply(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn relu_is_max_with_floor() {
        let r = Relu(0.0f64);
        assert_eq!(r.apply(-3.0), 0.0);
        assert_eq!(r.apply(2.5), 2.5);
    }

    #[test]
    fn fn_ops_wrap_closures() {
        let double = FnOp(|x: i32| x * 2);
        assert_eq!(double.apply(21), 42);
        let sub = FnBinOp(|a: i32, b: i32| a - b);
        assert_eq!(sub.apply(5, 3), 2);
    }
}
