//! Algebraic substrate for the *Mathematics of Digital Hyperspace*.
//!
//! This crate provides the scalar-level algebra that the rest of the
//! workspace builds on:
//!
//! * [`Semiring`], [`Monoid`], [`BinaryOp`], and [`UnaryOp`] traits in the
//!   style of the GraphBLAS standard — operator objects are zero-sized
//!   structs, so every kernel that takes one monomorphizes into a tight
//!   loop with no dynamic dispatch.
//! * Every semiring of **Table I** of the paper: arithmetic `+.×`
//!   ([`PlusTimes`]), the tropical algebras `max.+` ([`MaxPlus`]),
//!   `min.+` ([`MinPlus`]), `max.×` ([`MaxTimes`]), `min.×`
//!   ([`MinTimes`]), `max.min` ([`MaxMin`]), `min.max` ([`MinMax`]), and
//!   the relational-database `∪.∩` power-set semiring
//!   ([`UnionIntersect`] over [`PSet`]).
//! * Auxiliary semirings used by graph analytics: boolean `∨.∧`
//!   ([`LorLand`]), `min.first` / `max.first` / `min.second`
//!   ([`MinFirst`], [`MaxFirst`], [`MinSecond`]) for parent-tracking
//!   BFS, and `any.pair` ([`AnyPair`]) for reachability.
//! * The algebraic conditions for fused **one-step parent BFS**
//!   ([`onestep`]): selectivity, left-carrying ⊗, annihilation, and
//!   order-freeness as checkable predicates, probed per semiring so the
//!   graph layer picks the fused variant only where it is sound.
//! * The scalar face of the paper's **semilink**
//!   `(𝔸, ⊕, ⊗, ⊕.⊗, 0, 1, 𝕀)` ([`Semilink`]); the array-level identities
//!   of §IV live in the `hyperspace-core` crate where arrays exist.
//! * Executable *law checkers* ([`laws`]) used by the property-based test
//!   suites of every downstream crate.
//! * A string interner ([`AtomTable`]) so that power-set values over
//!   string universes can be represented as sets of `u64` atoms.
//!
//! # Quick example
//!
//! ```
//! use semiring::{Semiring, PlusTimes, MinPlus};
//!
//! let s = PlusTimes::<f64>::default();
//! assert_eq!(s.add(2.0, s.mul(3.0, 4.0)), 14.0);
//!
//! // Tropical: path lengths combine by +, alternatives by min.
//! let t = MinPlus::<f64>::default();
//! assert_eq!(t.add(t.mul(1.0, 2.0), t.mul(4.0, 0.5)), 3.0);
//! assert_eq!(t.zero(), f64::INFINITY); // additive identity = ⊗-annihilator
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atom;
pub mod laws;
pub mod monoids;
pub mod numeric;
pub mod onestep;
pub mod ops;
pub mod pset;
pub mod semilink;
pub mod semirings;
pub mod traits;

pub use atom::{Atom, AtomTable};
pub use monoids::{
    AnyMonoid, IntersectMonoid, LandMonoid, LorMonoid, MaxMonoid, MinMonoid, PlusMonoid,
    TimesMonoid, UnionMonoid,
};
pub use numeric::Numeric;
pub use onestep::OneStepReport;
pub use ops::{First, FnBinOp, FnOp, Identity, Pair, Relu, Second, ZeroNorm};
pub use pset::PSet;
pub use semilink::Semilink;
pub use semirings::{
    AnyPair, LorLand, MaxFirst, MaxMin, MaxPlus, MaxTimes, MinFirst, MinMax, MinPlus, MinSecond,
    MinTimes, PlusTimes, UnionIntersect, XorAnd,
};
pub use traits::{BinaryOp, Monoid, Semiring, UnaryOp};
