//! String interning: "key based indices (such as pointers to strings)".
//!
//! The paper's conclusion calls for GraphBLAS to add *key based indices
//! such as pointers to strings*. [`AtomTable`] is that facility: it maps
//! arbitrary strings to dense `u64` atoms (and back), so that string-keyed
//! associative arrays and string-valued power sets ([`crate::PSet`]) can
//! run on integer kernels.

use std::collections::HashMap;
use std::sync::Arc;

/// An interned string id.
pub type Atom = u64;

/// A bidirectional string ↔ atom table.
///
/// Atoms are handed out densely from 0 in first-intern order, so an
/// `AtomTable` of *n* strings supports O(1) reverse lookup by index.
#[derive(Default, Debug, Clone)]
pub struct AtomTable {
    by_name: HashMap<Arc<str>, Atom>,
    by_atom: Vec<Arc<str>>,
}

impl AtomTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its atom (existing or fresh).
    pub fn intern(&mut self, s: &str) -> Atom {
        if let Some(&a) = self.by_name.get(s) {
            return a;
        }
        let name: Arc<str> = Arc::from(s);
        let a = self.by_atom.len() as Atom;
        self.by_atom.push(name.clone());
        self.by_name.insert(name, a);
        a
    }

    /// Look up an already-interned string without inserting.
    pub fn get(&self, s: &str) -> Option<Atom> {
        self.by_name.get(s).copied()
    }

    /// Reverse lookup.
    pub fn resolve(&self, a: Atom) -> Option<&str> {
        self.by_atom.get(a as usize).map(|s| s.as_ref())
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.by_atom.len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_atom.is_empty()
    }

    /// Iterate `(atom, name)` pairs in atom order.
    pub fn iter(&self) -> impl Iterator<Item = (Atom, &str)> {
        self.by_atom
            .iter()
            .enumerate()
            .map(|(i, s)| (i as Atom, s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = AtomTable::new();
        let a = t.intern("1.1.1.1");
        let b = t.intern("1.1.1.1");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn atoms_are_dense_in_order() {
        let mut t = AtomTable::new();
        assert_eq!(t.intern("a"), 0);
        assert_eq!(t.intern("b"), 1);
        assert_eq!(t.intern("a"), 0);
        assert_eq!(t.intern("c"), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = AtomTable::new();
        let a = t.intern("src|10.0.0.1");
        assert_eq!(t.resolve(a), Some("src|10.0.0.1"));
        assert_eq!(t.resolve(999), None);
        assert_eq!(t.get("src|10.0.0.1"), Some(a));
        assert_eq!(t.get("absent"), None);
    }

    #[test]
    fn iter_yields_in_atom_order() {
        let mut t = AtomTable::new();
        t.intern("x");
        t.intern("y");
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs, vec![(0, "x"), (1, "y")]);
    }
}
