//! Algebraic conditions for **one-step** parent breadth-first search.
//!
//! "Algebraic Conditions on One-Step Breadth-First Search" (PAPERS.md)
//! asks: when can the per-level BFS work — discovering the next frontier
//! *and* assigning each newly discovered vertex a parent — collapse into
//! a **single** masked vector-matrix product `q = f ⊕.⊗ A`, with `q`
//! trusted verbatim as both the frontier indicator and the parent
//! payload? The generic answer is "not always": an arbitrary semiring's
//! ⊕ may *blend* contributions (`+` sums parent ids into garbage) and
//! its ⊗ may replace the carried source id with edge data. The paper
//! characterizes the algebras where the collapse is sound; this module
//! encodes that characterization as executable predicates so the graph
//! layer can *decide* per semiring instead of hard-coding a list.
//!
//! The conditions, each a function below:
//!
//! 1. **⊕ is selective** ([`add_selective`]): `a ⊕ b ∈ {a, b}`. The sum
//!    over in-neighbours then *picks one* contribution — a parent — and
//!    never fabricates a value that is not some in-neighbour's id.
//!    Selectivity implies idempotence ([`add_idempotent`]), which is
//!    what makes re-visiting an already-summed vertex harmless; the
//!    implication is itself checked as a meta-law in the test suite.
//! 2. **⊗ carries its left operand** ([`mul_left_carrier`]): for
//!    non-zero `a, b`, `a ⊗ b = a`. In `q(j) = ⊕ᵢ f(i) ⊗ A(i,j)` the
//!    frontier holds source ids on the left, so a left-carrying ⊗
//!    delivers the id unchanged through any present edge.
//! 3. **0 annihilates and is the ⊕-identity** ([`zero_annihilates`]):
//!    absent edges and absent frontier entries contribute nothing —
//!    the standard sparsity law, restated here because the one-step
//!    argument leans on it to equate "non-zero in `q`" with "reached
//!    this level".
//! 4. **⊕ is order-free** ([`add_order_free`]): commutative and
//!    associative, so the picked parent is independent of edge
//!    enumeration order — the determinism requirement that lets the
//!    fused variant be bit-identical across shardings.
//!
//! [`probe`] evaluates all four over a caller-supplied sample of the
//! value set and returns a [`OneStepReport`]; [`OneStepReport::qualifies`]
//! is the go/no-go the BFS driver consults. Sampling cannot *prove* a
//! law, but the proptest suites run the same predicates over randomized
//! samples for every Table-I semiring, and the graph layer additionally
//! cross-validates fused against two-step output wherever both run —
//! the decision procedure is machine-checked end to end.
//!
//! ```
//! use semiring::onestep::{probe, OneStepReport};
//! use semiring::{MinFirst, PlusTimes, Semiring};
//!
//! let ids: Vec<u64> = vec![0, 1, 2, 3, 7];
//! assert!(probe(&MinFirst, &ids).qualifies());
//!
//! let nums: Vec<u64> = vec![0, 1, 2, 3, 7];
//! let r = probe(&PlusTimes::<u64>::new(), &nums);
//! assert!(!r.add_idempotent && !r.qualifies()); // 1 + 1 ≠ 1
//! ```

use crate::laws;
use crate::traits::Semiring;

/// The outcome of probing a semiring against the one-step BFS
/// conditions over a sample of its value set. Each flag is the verdict
/// of the correspondingly named predicate quantified over the sample;
/// [`Self::qualifies`] conjoins them.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct OneStepReport {
    /// `a ⊕ a = a` for every sampled `a`.
    pub add_idempotent: bool,
    /// `a ⊕ b ∈ {a, b}` for every sampled pair.
    pub add_selective: bool,
    /// `a ⊗ b = a` for every sampled pair of non-zero values.
    pub mul_left_carrier: bool,
    /// `a ⊗ 0 = 0 ⊗ a = 0` and `a ⊕ 0 = a` for every sampled `a`.
    pub zero_annihilates: bool,
    /// ⊕ commutative and associative over every sampled triple.
    pub add_order_free: bool,
}

impl OneStepReport {
    /// `true` iff every one-step condition held over the sample — the
    /// fused single-pass parent BFS is sound for this semiring.
    pub fn qualifies(&self) -> bool {
        self.add_idempotent
            && self.add_selective
            && self.mul_left_carrier
            && self.zero_annihilates
            && self.add_order_free
    }

    /// The conditions that failed, as static names — for diagnostics
    /// and for tests asserting *why* a semiring fell back.
    pub fn failed(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if !self.add_idempotent {
            out.push("add_idempotent");
        }
        if !self.add_selective {
            out.push("add_selective");
        }
        if !self.mul_left_carrier {
            out.push("mul_left_carrier");
        }
        if !self.zero_annihilates {
            out.push("zero_annihilates");
        }
        if !self.add_order_free {
            out.push("add_order_free");
        }
        out
    }
}

/// `a ⊕ a = a`: summing a contribution twice changes nothing.
pub fn add_idempotent<S: Semiring>(s: &S, a: S::Value) -> bool {
    s.add(a.clone(), a.clone()) == a
}

/// `a ⊕ b ∈ {a, b}`: the sum *selects* one operand rather than blending
/// them. This is the heart of parent-choice: the level's reduction over
/// in-neighbours must return some in-neighbour's id verbatim.
pub fn add_selective<S: Semiring>(s: &S, a: S::Value, b: S::Value) -> bool {
    let r = s.add(a.clone(), b.clone());
    r == a || r == b
}

/// For non-zero `a, b`: `a ⊗ b = a` — the product forwards the frontier
/// (left) value through a present edge unchanged. Vacuously true when
/// either operand is the semiring zero (annihilation covers that case).
pub fn mul_left_carrier<S: Semiring>(s: &S, a: S::Value, b: S::Value) -> bool {
    if s.is_zero(&a) || s.is_zero(&b) {
        return true;
    }
    s.mul(a.clone(), b) == a
}

/// `a ⊗ 0 = 0 ⊗ a = 0` and `a ⊕ 0 = 0 ⊕ a = a`: absence stays absent
/// and contributes nothing.
pub fn zero_annihilates<S: Semiring>(s: &S, a: S::Value) -> bool {
    laws::annihilator(s, a.clone(), &laws::exact) && laws::add_identity(s, a, &laws::exact)
}

/// ⊕ commutative and associative on a triple: the selected parent does
/// not depend on the order edges are enumerated in.
pub fn add_order_free<S: Semiring>(s: &S, a: S::Value, b: S::Value, c: S::Value) -> bool {
    laws::add_commutative(s, a.clone(), b.clone(), &laws::exact)
        && laws::add_associative(s, a, b, c, &laws::exact)
}

/// Evaluate every one-step condition over all pairs/triples drawn from
/// `samples` (with the semiring's own `0` adjoined, so the annihilation
/// and identity checks always see it). `O(n³)` in the sample count —
/// intended for small, representative samples; callers wanting
/// statistical strength run the same predicates under proptest.
pub fn probe<S: Semiring>(s: &S, samples: &[S::Value]) -> OneStepReport {
    let mut vals: Vec<S::Value> = vec![s.zero()];
    for v in samples {
        if !vals.contains(v) {
            vals.push(v.clone());
        }
    }

    let mut report = OneStepReport {
        add_idempotent: true,
        add_selective: true,
        mul_left_carrier: true,
        zero_annihilates: true,
        add_order_free: true,
    };

    for a in &vals {
        report.add_idempotent &= add_idempotent(s, a.clone());
        report.zero_annihilates &= zero_annihilates(s, a.clone());
        for b in &vals {
            report.add_selective &= add_selective(s, a.clone(), b.clone());
            report.mul_left_carrier &= mul_left_carrier(s, a.clone(), b.clone());
            for c in &vals {
                report.add_order_free &= add_order_free(s, a.clone(), b.clone(), c.clone());
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semirings::{
        AnyPair, LorLand, MaxFirst, MaxMin, MinFirst, MinPlus, MinSecond, PlusTimes, XorAnd,
    };

    fn ids() -> Vec<u64> {
        vec![1, 2, 3, 100, 1 << 20]
    }

    #[test]
    fn parent_selection_semirings_qualify() {
        assert!(probe(&MinFirst, &ids()).qualifies());
        assert!(probe(&MaxFirst, &ids()).qualifies());
        assert!(probe(&LorLand, &[false, true]).qualifies());
        assert!(probe(&AnyPair, &[0u8, 1]).qualifies());
    }

    #[test]
    fn blending_addition_disqualifies() {
        let r = probe(&PlusTimes::<u64>::new(), &[1, 2, 3]);
        assert!(!r.add_idempotent);
        assert!(!r.qualifies());
        assert!(r.failed().contains(&"add_idempotent"));

        let r = probe(&XorAnd, &[false, true]);
        assert!(!r.add_idempotent); // 1 ⊕ 1 = 0
        assert!(!r.qualifies());
    }

    #[test]
    fn value_mangling_multiplication_disqualifies() {
        // min.+ is idempotent-selective in ⊕ but ⊗ = + rewrites the
        // carried id; small overflow-safe samples.
        let r = probe(&MinPlus::<u64>::new(), &[1, 2, 3]);
        assert!(r.add_idempotent && r.add_selective);
        assert!(!r.mul_left_carrier);
        assert!(!r.qualifies());

        // min.second carries the *matrix* value — wrong side.
        let r = probe(&MinSecond, &ids());
        assert!(!r.mul_left_carrier);
        assert!(!r.qualifies());

        // max.min keeps the smaller operand when the edge value is
        // smaller than the id — not a left carrier.
        let r = probe(&MaxMin::<u64>::new(), &[1, 2, 3]);
        assert!(!r.mul_left_carrier);
        assert!(!r.qualifies());
    }

    #[test]
    fn selectivity_implies_idempotence_meta_law() {
        // Checked generically in the proptest suite; pinned here on one
        // qualifying and one non-qualifying algebra.
        for r in [
            probe(&MinFirst, &ids()),
            probe(&PlusTimes::<u64>::new(), &[1, 2, 3]),
        ] {
            if r.add_selective {
                assert!(r.add_idempotent);
            }
        }
    }

    #[test]
    fn probe_adjoins_zero() {
        // Even an all-non-zero sample exercises annihilation.
        let r = probe(&MinFirst, &[5]);
        assert!(r.zero_annihilates);
    }
}
