//! Property-based verification of Table I.
//!
//! Every semiring the paper tabulates is run through the full law suite
//! ([`semiring::laws`]) on randomized values from its *actual* value set
//! (e.g. `max.×` only over ℝ≥0, `min.×` only over ℝ>0 ∪ +∞, exactly as
//! the table's "Set" column specifies).

use proptest::prelude::*;
use semiring::laws::{approx, exact, monoid_laws, semiring_laws};
use semiring::{
    AnyPair, IntersectMonoid, LandMonoid, LorLand, LorMonoid, MaxMin, MaxMonoid, MaxPlus, MaxTimes,
    MinFirst, MinMax, MinMonoid, MinPlus, MinSecond, MinTimes, PSet, PlusMonoid, PlusTimes,
    Semiring, UnionIntersect, UnionMonoid, XorAnd,
};

/// Finite floats plus the two infinities, as Table I's ℝ ∪ ±∞.
fn extended_real() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => -1.0e6..1.0e6f64,
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
    ]
}

fn nonneg_real() -> impl Strategy<Value = f64> {
    0.0..1.0e6f64
}

fn pos_real_or_inf() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => 1.0e-3..1.0e6f64,
        1 => Just(f64::INFINITY),
    ]
}

fn small_set() -> impl Strategy<Value = PSet> {
    prop_oneof![
        8 => proptest::collection::btree_set(0u64..32, 0..8)
            .prop_map(PSet::Set),
        1 => Just(PSet::Universe),
    ]
}

proptest! {
    // ---- Row 1: (ℝ, +, ×, 0, 1) ----
    #[test]
    fn plus_times_f64(a in -1e6..1e6f64, b in -1e6..1e6f64, c in -1e6..1e6f64) {
        prop_assert!(semiring_laws(&PlusTimes::<f64>::new(), a, b, c, approx(1e-9)));
    }

    #[test]
    fn plus_times_i64(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000, c in -1_000_000i64..1_000_000) {
        prop_assert!(semiring_laws(&PlusTimes::<i64>::new(), a, b, c, exact));
    }

    // ---- Row 2: (ℝ ∪ −∞, max, +, −∞, 0) ----
    #[test]
    fn max_plus(a in extended_real(), b in extended_real(), c in extended_real()) {
        // Exclude mixed ±∞ (−∞ + +∞ is undefined in the tropical extension;
        // saturating arithmetic makes a choice but the algebra excludes it).
        prop_assume!(!(a == f64::INFINITY || b == f64::INFINITY || c == f64::INFINITY));
        prop_assert!(semiring_laws(&MaxPlus::<f64>::new(), a, b, c, approx(1e-9)));
    }

    // ---- Row 3: (ℝ ∪ +∞, min, +, +∞, 0) ----
    #[test]
    fn min_plus(a in extended_real(), b in extended_real(), c in extended_real()) {
        prop_assume!(!(a == f64::NEG_INFINITY || b == f64::NEG_INFINITY || c == f64::NEG_INFINITY));
        prop_assert!(semiring_laws(&MinPlus::<f64>::new(), a, b, c, approx(1e-9)));
    }

    // ---- Row 4: (ℝ≥0, max, ×, 0, 1) ----
    #[test]
    fn max_times(a in nonneg_real(), b in nonneg_real(), c in nonneg_real()) {
        prop_assert!(semiring_laws(&MaxTimes::<f64>::new(), a, b, c, approx(1e-9)));
    }

    // ---- Row 5: (ℝ>0 ∪ +∞, min, ×, +∞, 1) ----
    #[test]
    fn min_times(a in pos_real_or_inf(), b in pos_real_or_inf(), c in pos_real_or_inf()) {
        prop_assert!(semiring_laws(&MinTimes::<f64>::new(), a, b, c, approx(1e-9)));
    }

    // ---- Row 6: (𝒫(𝕍), ∪, ∩, ∅, 𝒫(𝕍)) ----
    #[test]
    fn union_intersect(a in small_set(), b in small_set(), c in small_set()) {
        prop_assert!(semiring_laws(&UnionIntersect, a, b, c, exact));
    }

    // ---- Row 7: (𝕍 ∪ −∞, max, min, −∞, +∞) over a sortable set ----
    #[test]
    fn max_min(a in any::<i64>(), b in any::<i64>(), c in any::<i64>()) {
        prop_assert!(semiring_laws(&MaxMin::<i64>::new(), a, b, c, exact));
    }

    // ---- Row 8: (𝕍 ∪ +∞, min, max, +∞, −∞) ----
    #[test]
    fn min_max(a in any::<i64>(), b in any::<i64>(), c in any::<i64>()) {
        prop_assert!(semiring_laws(&MinMax::<i64>::new(), a, b, c, exact));
    }

    // ---- Boolean ∨.∧ ----
    #[test]
    fn lor_land(a in any::<bool>(), b in any::<bool>(), c in any::<bool>()) {
        prop_assert!(semiring_laws(&LorLand, a, b, c, exact));
    }

    // ---- GF(2) xor.and ----
    #[test]
    fn xor_and(a in any::<bool>(), b in any::<bool>(), c in any::<bool>()) {
        prop_assert!(semiring_laws(&XorAnd, a, b, c, exact));
    }

    // ---- Reduction monoids ----
    #[test]
    fn reduction_monoids(a in -1e6..1e6f64, b in -1e6..1e6f64, c in -1e6..1e6f64) {
        prop_assert!(monoid_laws(&PlusMonoid::<f64>::default(), a, b, c, approx(1e-9)));
        prop_assert!(monoid_laws(&MinMonoid::<f64>::default(), a, b, c, exact));
        prop_assert!(monoid_laws(&MaxMonoid::<f64>::default(), a, b, c, exact));
    }

    #[test]
    fn bool_monoids(a in any::<bool>(), b in any::<bool>(), c in any::<bool>()) {
        prop_assert!(monoid_laws(&LorMonoid, a, b, c, exact));
        prop_assert!(monoid_laws(&LandMonoid, a, b, c, exact));
    }

    #[test]
    fn set_monoids(a in small_set(), b in small_set(), c in small_set()) {
        prop_assert!(monoid_laws(&UnionMonoid, a.clone(), b.clone(), c.clone(), exact));
        prop_assert!(monoid_laws(&IntersectMonoid, a, b, c, exact));
    }

    // ---- Graph-analytic operator bundles ----
    // MinFirst / MinSecond / AnyPair are GraphBLAS-style (monoid, binop)
    // pairs, not full semirings: their ⊗ identity is one-sided by design.
    // We verify the laws sparse kernels actually rely on: additive monoid
    // laws and the annihilating zero.
    #[test]
    fn min_first_kernel_laws(a in 1u64..1000, b in 1u64..1000, c in 1u64..1000) {
        let s = MinFirst;
        prop_assert!(semiring::laws::add_associative(&s, a, b, c, &exact));
        prop_assert!(semiring::laws::add_commutative(&s, a, b, &exact));
        prop_assert!(semiring::laws::add_identity(&s, a, &exact));
        prop_assert!(semiring::laws::annihilator(&s, a, &exact));
        // mul carries the left (source) operand through present entries:
        prop_assert_eq!(s.mul(a, b), a);
    }

    #[test]
    fn min_second_kernel_laws(a in 1u64..1000, b in 1u64..1000, c in 1u64..1000) {
        let s = MinSecond;
        prop_assert!(semiring::laws::add_associative(&s, a, b, c, &exact));
        prop_assert!(semiring::laws::add_commutative(&s, a, b, &exact));
        prop_assert!(semiring::laws::add_identity(&s, a, &exact));
        prop_assert!(semiring::laws::annihilator(&s, a, &exact));
        prop_assert_eq!(s.mul(a, b), b);
    }

    #[test]
    fn any_pair_kernel_laws(a in 0u8..2, b in 0u8..2, c in 0u8..2) {
        let s = AnyPair;
        prop_assert!(semiring::laws::add_associative(&s, a, b, c, &exact));
        prop_assert!(semiring::laws::add_identity(&s, a, &exact));
        prop_assert!(semiring::laws::annihilator(&s, a, &exact));
        // pair: product of two present entries is always 1.
        if a != 0 && b != 0 {
            prop_assert_eq!(s.mul(a, b), 1);
        }
    }
}
