//! Property-based verification of the one-step BFS conditions.
//!
//! For every semiring of Table I (plus the graph-analytic auxiliaries)
//! the predicates of `semiring::onestep` are run over randomized samples
//! from the semiring's actual value set. The suite pins *both*
//! directions of the characterization: qualifying algebras satisfy every
//! condition on arbitrary samples, and each non-qualifying algebra
//! violates the specific condition the theory says it must — so the
//! `probe`-driven selection in `graph::bfs` is machine-checked rather
//! than a hard-coded list.

use proptest::prelude::*;
use semiring::onestep::{
    add_idempotent, add_order_free, add_selective, mul_left_carrier, probe, zero_annihilates,
};
use semiring::{
    AnyPair, LorLand, MaxFirst, MaxMin, MaxPlus, MaxTimes, MinFirst, MinMax, MinPlus, MinSecond,
    MinTimes, PSet, PlusTimes, Semiring, UnionIntersect, XorAnd,
};

/// Assert every one-step condition on a sampled triple — the shape of
/// the check for qualifying semirings.
fn assert_all_conditions<S: Semiring>(s: &S, a: S::Value, b: S::Value, c: S::Value) {
    assert!(add_idempotent(s, a.clone()));
    assert!(add_selective(s, a.clone(), b.clone()));
    assert!(mul_left_carrier(s, a.clone(), b.clone()));
    assert!(zero_annihilates(s, a.clone()));
    assert!(add_order_free(s, a, b, c));
}

fn small_set() -> impl Strategy<Value = PSet> {
    prop_oneof![
        8 => proptest::collection::btree_set(0u64..32, 0..8).prop_map(PSet::Set),
        1 => Just(PSet::Universe),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- Qualifying algebras: every condition holds on any sample ----

    #[test]
    fn min_first_qualifies(a in 1u64..1 << 20, b in 1u64..1 << 20, c in 1u64..1 << 20) {
        assert_all_conditions(&MinFirst, a, b, c);
        prop_assert!(probe(&MinFirst, &[a, b, c]).qualifies());
    }

    #[test]
    fn max_first_qualifies(a in 1u64..1 << 20, b in 1u64..1 << 20, c in 1u64..1 << 20) {
        assert_all_conditions(&MaxFirst, a, b, c);
        prop_assert!(probe(&MaxFirst, &[a, b, c]).qualifies());
    }

    #[test]
    fn lor_land_qualifies(a in any::<bool>(), b in any::<bool>(), c in any::<bool>()) {
        assert_all_conditions(&LorLand, a, b, c);
        prop_assert!(probe(&LorLand, &[a, b, c]).qualifies());
    }

    #[test]
    fn any_pair_qualifies_over_flags(a in 0u8..2, b in 0u8..2, c in 0u8..2) {
        // AnyPair's value set is the flag domain {0, 1}; over it every
        // present product is 1 = the carried flag.
        assert_all_conditions(&AnyPair, a, b, c);
        prop_assert!(probe(&AnyPair, &[a, b, c]).qualifies());
    }

    // ---- Non-qualifying algebras: the predicted condition fails ----

    #[test]
    fn plus_times_blends(a in 1u64..1 << 20, b in 1u64..1 << 20, c in 1u64..1 << 20) {
        // + is not idempotent on any non-zero value.
        prop_assert!(!add_idempotent(&PlusTimes::<u64>::new(), a));
        let r = probe(&PlusTimes::<u64>::new(), &[a, b, c]);
        prop_assert!(!r.add_idempotent && !r.qualifies());
    }

    #[test]
    fn xor_and_blends(a in any::<bool>(), b in any::<bool>(), c in any::<bool>()) {
        // GF(2): 1 ⊕ 1 = 0 — idempotence fails on `true`. (A sample of
        // all-`false` is the trivial subalgebra {0} and genuinely
        // satisfies the conditions, so the probe must see `true`.)
        prop_assert!(!add_idempotent(&XorAnd, true));
        prop_assert!(!probe(&XorAnd, &[a, b, c, true]).qualifies());
    }

    #[test]
    fn tropical_mul_mangles_ids(a in 1u64..1 << 20, b in 1u64..1 << 20, c in 1u64..1 << 20) {
        // min.+ / max.+: ⊕ is selective but ⊗ = + rewrites the carried
        // value whenever the edge weight is non-zero(-algebra) ≠ 0.
        let mp = MinPlus::<u64>::new();
        prop_assert!(add_selective(&mp, a, b));
        prop_assert!(!mul_left_carrier(&mp, a, b) || a == mp.mul(a, b));
        let r = probe(&mp, &[a, b, c]);
        prop_assert!(!r.mul_left_carrier && !r.qualifies());

        let r = probe(&MaxPlus::<i64>::new(), &[a as i64, b as i64, c as i64]);
        prop_assert!(!r.mul_left_carrier && !r.qualifies());
    }

    #[test]
    fn tropical_times_mangles_ids(a in 2u64..1 << 10, b in 2u64..1 << 10, c in 2u64..1 << 10) {
        // min.× / max.×: ⊗ = × scales the carried value (samples ≥ 2 so
        // ×1 never masks the failure).
        let r = probe(&MinTimes::<u64>::new(), &[a, b, c]);
        prop_assert!(!r.mul_left_carrier && !r.qualifies());
        let r = probe(&MaxTimes::<u64>::new(), &[a, b, c]);
        prop_assert!(!r.mul_left_carrier && !r.qualifies());
    }

    #[test]
    fn bottleneck_mul_keeps_wrong_side(a in 1u64..1 << 20, b in 1u64..1 << 20, c in 1u64..1 << 20) {
        // max.min / min.max: ⊗ picks the extremal operand, which is the
        // edge value whenever it beats the id.
        prop_assume!(a != b && b != c && a != c);
        let r = probe(&MaxMin::<u64>::new(), &[a, b, c]);
        prop_assert!(!r.mul_left_carrier && !r.qualifies());
        let r = probe(&MinMax::<u64>::new(), &[a, b, c]);
        prop_assert!(!r.mul_left_carrier && !r.qualifies());
    }

    #[test]
    fn min_second_carries_wrong_operand(a in 1u64..1 << 20, b in 1u64..1 << 20, c in 1u64..1 << 20) {
        prop_assume!(a != b);
        prop_assert!(!mul_left_carrier(&MinSecond, a, b));
        prop_assert!(!probe(&MinSecond, &[a, b, c]).qualifies());
    }

    #[test]
    fn union_intersect_intersection_shrinks(a in small_set(), b in small_set(), c in small_set()) {
        // ∪ is selective only on comparable sets; ∩ keeps the overlap,
        // not the left operand. Probing over incomparable sets must
        // fall back.
        let x = PSet::from_iter([1, 2]);
        let y = PSet::from_iter([2, 3]);
        let r = probe(&UnionIntersect, &[a, b, c, x, y]);
        prop_assert!(!r.qualifies());
        prop_assert!(!r.add_selective || !r.mul_left_carrier);
    }

    // ---- Meta-law: selectivity implies idempotence ----

    #[test]
    fn selectivity_implies_idempotence(a in 1u64..1 << 20, b in 1u64..1 << 20) {
        // Instance of the general implication a ⊕ a ∈ {a}: check it on
        // every algebra sharing the u64 carrier.
        let mf = MinFirst;
        if add_selective(&mf, a, b) { prop_assert!(add_idempotent(&mf, a)); }
        let xf = MaxFirst;
        if add_selective(&xf, a, b) { prop_assert!(add_idempotent(&xf, a)); }
        let pt = PlusTimes::<u64>::new();
        if add_selective(&pt, a, b) { prop_assert!(add_idempotent(&pt, a)); }
        let ms = MinSecond;
        if add_selective(&ms, a, b) { prop_assert!(add_idempotent(&ms, a)); }
    }
}
