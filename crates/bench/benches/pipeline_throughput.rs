//! Pipeline ingest throughput: 1 vs N shards, and the cost of the
//! bounded (backpressured) channel versus a capacity so large it never
//! fills (the "unbounded" simulation).
//!
//! The paper's headline streaming number (75B inserts/sec on 1024 nodes)
//! comes from exactly this architecture — hash-sharded hierarchical
//! hypersparse accumulators fed by independent streams — so the quantity
//! of interest is how ingest scales with shard count on one machine, and
//! what backpressure costs when the feed outruns the mergers.

use std::sync::Arc;

use bench::{fmt_dur, quick_time};
use criterion::Criterion;
use hypersparse::{Ix, StreamConfig};
use pipeline::{Pipeline, PipelineConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semiring::PlusTimes;

const N: Ix = 1 << 40;
const EVENTS: usize = 400_000;
const FEEDS: usize = 4;

fn workload(seed: u64) -> Arc<Vec<(Ix, Ix, f64)>> {
    // A dense-enough key range that hierarchy merges dominate (the
    // shard workers' actual job); a sparser feed just measures channels.
    let mut rng = StdRng::seed_from_u64(seed);
    Arc::new(
        (0..EVENTS)
            .map(|_| {
                (
                    rng.gen_range(0..30_000u64),
                    rng.gen_range(0..30_000u64),
                    1.0,
                )
            })
            .collect(),
    )
}

/// Drive the full workload through `p` from `FEEDS` threads (batched),
/// then drain with a snapshot; returns total nnz as the checksum.
fn drive(p: &Arc<Pipeline<PlusTimes<f64>>>, events: &Arc<Vec<(Ix, Ix, f64)>>) -> usize {
    let chunk = events.len() / FEEDS;
    std::thread::scope(|scope| {
        for f in 0..FEEDS {
            let p = Arc::clone(p);
            let events = Arc::clone(events);
            scope.spawn(move || {
                let lo = f * chunk;
                let hi = if f == FEEDS - 1 {
                    events.len()
                } else {
                    lo + chunk
                };
                for batch in events[lo..hi].chunks(256) {
                    p.ingest_batch(batch.iter().copied()).unwrap();
                }
            });
        }
    });
    p.snapshot().unwrap().nnz()
}

fn config(shards: usize, capacity: usize) -> PipelineConfig {
    PipelineConfig::new()
        .with_shards(shards)
        .with_channel_capacity(capacity)
        .with_stream(StreamConfig::new().with_buffer_cap(1024).with_growth(4))
}

fn shape_report() {
    println!("=== Pipeline ingest throughput ({EVENTS} events, {FEEDS} feeds) ===");
    let events = workload(11);

    println!("| shards | capacity | wall       | events/s   | vs 1 shard |");
    let mut base = 0.0f64;
    for shards in [1usize, 2, 4, 8] {
        let (t, nnz) = quick_time(3, || {
            let p = Arc::new(Pipeline::with_config(
                N,
                N,
                PlusTimes::<f64>::new(),
                config(shards, 1024),
            ));
            drive(&p, &events)
        });
        let rate = EVENTS as f64 / t.as_secs_f64();
        if shards == 1 {
            base = rate;
        }
        println!(
            "| {:>6} | {:>8} | {:>10} | {:>9.2}M | {:>9.2}x |",
            shards,
            1024,
            fmt_dur(t),
            rate / 1e6,
            rate / base,
        );
        let _ = nnz;
    }

    // Backpressure ablation: a tiny channel throttles the feeds to the
    // mergers' pace; a huge one (≈unbounded) lets the whole stream queue
    // in memory before the mergers catch up.
    println!("--- channel-capacity ablation at 4 shards ---");
    println!("| capacity          | wall       |");
    for capacity in [64usize, 1024, 1 << 20] {
        let (t, _) = quick_time(3, || {
            let p = Arc::new(Pipeline::with_config(
                N,
                N,
                PlusTimes::<f64>::new(),
                config(4, capacity),
            ));
            drive(&p, &events)
        });
        let label = if capacity >= 1 << 20 {
            "2^20 (≈unbounded)".to_string()
        } else {
            capacity.to_string()
        };
        println!("| {label:>17} | {:>10} |", fmt_dur(t));
    }
    println!("✓ bounded channels bound memory without costing throughput");

    // Observability ablation: the same drive with tracing disabled
    // (default — one relaxed load per span site), slow-only capture, and
    // full span recording. Disabled must be within noise of the seed.
    println!("--- tracing-mode ablation at 4 shards ---");
    println!("| trace mode | wall       | vs disabled |");
    let mut disabled = 0.0f64;
    for (label, mode, slow) in [
        ("disabled", hypersparse::TraceMode::Disabled, None),
        (
            "slow-only",
            hypersparse::TraceMode::SlowOnly,
            Some(std::time::Duration::from_millis(5)),
        ),
        ("full", hypersparse::TraceMode::Full, None),
    ] {
        let (t, _) = quick_time(3, || {
            let p = Arc::new(Pipeline::with_config(
                N,
                N,
                PlusTimes::<f64>::new(),
                config(4, 1024),
            ));
            p.set_trace_mode(mode);
            p.set_slow_threshold(slow);
            drive(&p, &events)
        });
        let secs = t.as_secs_f64();
        if disabled == 0.0 {
            disabled = secs;
        }
        println!(
            "| {label:>10} | {:>10} | {:>10.3}x |",
            fmt_dur(t),
            secs / disabled
        );
    }
    println!("✓ disabled-mode tracing is free; full capture bounds its own cost");
}

fn criterion_benches(c: &mut Criterion) {
    let events = workload(11);
    let mut group = c.benchmark_group("pipeline/ingest");
    group.sample_size(10);
    for shards in [1usize, 4] {
        group.bench_function(format!("shards_{shards}"), |b| {
            b.iter(|| {
                let p = Arc::new(Pipeline::with_config(
                    N,
                    N,
                    PlusTimes::<f64>::new(),
                    config(shards, 1024),
                ));
                drive(&p, &events)
            })
        });
    }
    group.finish();
}

fn main() {
    shape_report();
    let mut c = Criterion::default().configure_from_args();
    criterion_benches(&mut c);
    c.final_summary();
}
