//! **Fig. 6** — one dataset, four representations, one query.
//!
//! Synthetic network flows loaded simultaneously into a SQL-style row
//! store, a NoSQL triple store, and a D4M exploded-schema associative
//! array (whose adjacency projection is the graph view). The query
//! *"find 1.1.1.1's nearest neighbors"* runs in every representation,
//! is asserted identical, and is timed; the §V.B semilink select is
//! cross-validated against a direct scan on the same data.

use bench::{fmt_dur, quick_time};
use criterion::Criterion;
use db::gen::{flows, FlowParams};
use db::{AssocTable, RowTable, TripleStore};
use hyperspace_core::select::{select_direct, select_semilink};
use semiring::UnionIntersect;

const HOST: &str = "1.1.1.1";

fn shape_report() {
    println!("=== Fig. 6: the neighbor query across representations ===");
    println!("| records | SQL scan   | NoSQL index | assoc algebra | neighbors |");
    for &n in &[10_000usize, 100_000, 500_000] {
        let records = flows(
            FlowParams {
                n_records: n,
                n_hosts: 500,
                skew: 1.1,
            },
            2026,
        );
        let sql = RowTable::from_records(records.clone());
        let nosql = TripleStore::from_records(records.clone());
        let d4m = AssocTable::from_records(records);

        let (t_sql, n_sql) = quick_time(3, || sql.neighbors(HOST));
        let (t_nosql, n_nosql) = quick_time(3, || nosql.neighbors(HOST));
        // The algebraic view answers from the (precomputable) adjacency
        // projection; time the projection + support extraction once.
        let (t_d4m, n_d4m) = quick_time(3, || d4m.neighbors(HOST));

        assert_eq!(n_sql, n_nosql);
        assert_eq!(n_sql, n_d4m);
        println!(
            "| {:>7} | {:>10} | {:>11} | {:>13} | {:>9} |",
            n,
            fmt_dur(t_sql),
            fmt_dur(t_nosql),
            fmt_dur(t_d4m),
            n_sql.len(),
        );
    }
    println!("✓ identical neighbor sets across SQL, NoSQL, and associative-array views");

    println!("\n=== §V.B: semilink select vs direct scan ===");
    println!("| records | semilink formula | direct scan | matches |");
    for &n in &[1_000usize, 10_000] {
        let records = flows(
            FlowParams {
                n_records: n,
                n_hosts: 200,
                skew: 1.1,
            },
            7,
        );
        let (view, mut atoms) = AssocTable::set_view(&records);
        let v = atoms.intern("443");
        let col = "port".to_string();
        let (t_formula, by_formula) =
            quick_time(3, || select_semilink(&view, &col, v).prune(UnionIntersect));
        let (t_scan, by_scan) = quick_time(3, || select_direct(&view, &col, v));
        assert_eq!(by_formula, by_scan);
        println!(
            "| {:>7} | {:>16} | {:>11} | {:>7} |",
            n,
            fmt_dur(t_formula),
            fmt_dur(t_scan),
            hyperspace_core::semilink::support_rows(&by_formula).len(),
        );
    }
    println!("✓ |((A ∪.∩ 𝕀(k)) ∩ v) ∪.∩ 𝟙|₀ ∩ A ≡ direct select");
}

fn criterion_benches(c: &mut Criterion) {
    let records = flows(
        FlowParams {
            n_records: 100_000,
            n_hosts: 500,
            skew: 1.1,
        },
        2026,
    );
    let sql = RowTable::from_records(records.clone());
    let nosql = TripleStore::from_records(records.clone());
    let d4m = AssocTable::from_records(records.clone());

    let mut group = c.benchmark_group("fig6/neighbors_100k");
    group.sample_size(10);
    group.bench_function("sql_scan", |b| b.iter(|| sql.neighbors(HOST)));
    group.bench_function("nosql_index", |b| b.iter(|| nosql.neighbors(HOST)));
    group.bench_function("assoc_algebra", |b| b.iter(|| d4m.neighbors(HOST)));
    group.finish();

    let mut group = c.benchmark_group("fig6/analytics_100k");
    group.sample_size(10);
    group.bench_function("group_count_sql", |b| b.iter(|| sql.group_count("port")));
    group.bench_function("group_count_assoc", |b| b.iter(|| d4m.group_count("port")));
    group.finish();
}

fn main() {
    shape_report();
    let mut c = Criterion::default().configure_from_args();
    criterion_benches(&mut c);
    c.final_summary();
}
