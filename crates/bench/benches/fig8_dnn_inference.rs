//! **Figs. 7–8** — deep neural network inference.
//!
//! Fig. 7's 1955 neuron is exercised once for completeness; Fig. 8's
//! L-layer DNN runs as RadiX-Net sparse inference three ways — fused
//! sparse, the paper's S₁/S₂ two-semiring oscillation, and a dense
//! baseline — swept over width, depth, and input density. Sparse wins
//! while activations stay sparse; dense wins once rectification stops
//! pruning — the crossover is reported.

use bench::{fmt_dur, quick_time};
use criterion::Criterion;
use dnn::infer::{
    densify_weights, equivalent, infer_dense, infer_dense_full, infer_fused, infer_two_semiring,
};
use dnn::input::sparse_batch;
use dnn::neuron::Neuron;
use dnn::radix::{radix_net, RadixNetParams};
use hypersparse::DenseMat;
use semiring::PlusTimes;

const BATCH: u64 = 32;

fn shape_report() {
    // Fig. 7: the 1955 network element.
    let mut cell = Neuron::new(vec![0.4, 0.3, 0.3], 0.5);
    assert!(cell.fires(&[1.0, 1.0, 0.0]));
    cell.adapt(&[1.0, 1.0, 0.0], 0.1);
    assert!(cell.weights[0] > 0.4);
    println!("Fig. 7 ✓ — weighted-sum neuron fires and adapts (Clark–Farley 1955)");

    println!("\n=== Fig. 8: sparse DNN inference, three formulations ===");
    println!("| N     | L  | fanin | in-density | out nnz%  | fused      | two-semiring | dense (sp-W) | dense GEMM |");
    let cases = [
        // (neurons, layers, fanin, bias, input density)
        (1024u64, 12usize, 32u64, -0.4, 0.05),
        (1024, 12, 32, -0.05, 0.20),
        (4096, 12, 32, -0.4, 0.02),
        (4096, 48, 32, -0.4, 0.02),
        (1024, 120, 32, -0.4, 0.05),
        (256, 12, 64, -0.05, 0.50),
    ];
    for &(n, depth, fanin, bias, density) in &cases {
        let net = radix_net(
            RadixNetParams {
                n_neurons: n,
                fanin,
                depth,
                bias,
            },
            7,
        );
        let y0 = sparse_batch(BATCH, n, density, 9);
        let (t_fused, out) = quick_time(3, || infer_fused(&net, &y0));
        let (t_pair, out2) = quick_time(3, || infer_two_semiring(&net, &y0));
        assert_eq!(out, out2, "S1/S2 oscillation diverged");
        let dense_in = DenseMat::from_dcsr(&y0, PlusTimes::<f64>::new());
        let (t_dense, out_d) = quick_time(3, || infer_dense(&net, &dense_in));
        assert!(equivalent(&out, &out_d, 1e-6), "sparse ≠ dense");
        // Full-dense GEMM baseline only where it completes quickly.
        let t_gemm = if n <= 1024 && depth <= 12 {
            let dw = densify_weights(&net);
            let (t, out_g) = quick_time(1, || infer_dense_full(&net, &dw, &dense_in));
            assert!(equivalent(&out, &out_g, 1e-6), "sparse ≠ full dense");
            fmt_dur(t)
        } else {
            "—".to_string()
        };
        println!(
            "| {:>5} | {:>2} | {:>5} | {:>10.2} | {:>8.2}% | {:>10} | {:>12} | {:>12} | {:>10} |",
            n,
            depth,
            fanin,
            density,
            100.0 * out.nnz() as f64 / (BATCH * n) as f64,
            fmt_dur(t_fused),
            fmt_dur(t_pair),
            fmt_dur(t_dense),
            t_gemm,
        );
    }
    println!("✓ all three formulations agree entry-for-entry on every configuration");
    println!("  (sparse wins at low output density; dense wins as rectification stops pruning)");
}

fn criterion_benches(c: &mut Criterion) {
    let n = 1024u64;
    for &(label, bias, density) in &[
        ("sparse_regime", -0.4f64, 0.05f64),
        ("dense_regime", -0.02, 0.5),
    ] {
        let net = radix_net(
            RadixNetParams {
                n_neurons: n,
                fanin: 32,
                depth: 12,
                bias,
            },
            7,
        );
        let y0 = sparse_batch(BATCH, n, density, 9);
        let dense_in = DenseMat::from_dcsr(&y0, PlusTimes::<f64>::new());
        let mut group = c.benchmark_group(format!("fig8/{label}"));
        group.sample_size(10);
        group.bench_function("fused_sparse", |b| b.iter(|| infer_fused(&net, &y0)));
        group.bench_function("two_semiring", |b| b.iter(|| infer_two_semiring(&net, &y0)));
        group.bench_function("dense_baseline", |b| {
            b.iter(|| infer_dense(&net, &dense_in))
        });
        group.finish();
    }
}

fn main() {
    shape_report();
    let mut c = Criterion::default().configure_from_args();
    criterion_benches(&mut c);
    c.final_summary();
}
