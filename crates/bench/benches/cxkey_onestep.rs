//! Complex-index key algebra + algebraically-selected parent BFS.
//!
//! Two claims under test from the cxkey/onestep layer:
//!
//! 1. **Rollup is one monotone `O(nnz)` pass.** Projecting the port
//!    component out of a socket×socket window (48-bit `ip.port` keys)
//!    costs a single sorted ⊕-merge — microseconds on a realistic
//!    window, so multi-resolution serving never rebuilds matrices.
//! 2. **The algebra picks the cheaper BFS.** When the semiring passes
//!    the one-step conditions (`MinFirst` does), the fused single-vxm
//!    parent BFS must beat the generic two-step fallback while
//!    producing identical parents.
//!
//! Medians land in `BENCH_cxkey.json` at the repo root; the `_us` keys
//! are pinned by the CI perf gate, counts ride along informationally.

use bench::{fmt_dur, quick_time, BenchRecord};
use criterion::Criterion;
use graph::bfs::{parent_bfs_fused_ctx, parent_bfs_two_step_ctx, selects_one_step};
use graph::pattern::pattern_u64;
use hyperspace_core::cxkey::{self, CxPrefix, RollupAxes};
use hypersparse::ctx::OpCtx;
use hypersparse::gen::{rmat_dcsr, RmatParams};
use netflow::flow::{host_rollup, socket_matrix, socket_schema};
use netflow::{GenConfig, TrafficGen};
use semiring::{MinFirst, PlusTimes};

const EVENTS_PER_WINDOW: usize = 50_000;
const HOSTS: u32 = 2048;
const ROLLUP_ITERS: usize = 20;
const BFS_SCALE: u32 = 12;
const BFS_ITERS: usize = 5;

fn micros(d: std::time::Duration) -> f64 {
    (d.as_nanos() as f64 / 1e3 * 10.0).round() / 10.0
}

fn shape_report() -> BenchRecord {
    let mut rec = BenchRecord::new("cxkey_onestep");

    // ---- Complex-index rollup on a socket-resolution window ----
    println!("=== cxkey: socket window rollup (ip.port → host → /16) ===");
    let gen = TrafficGen::new(
        GenConfig::new()
            .with_hosts(HOSTS)
            .with_events_per_window(EVENTS_PER_WINDOW)
            .with_seed(0xC0FFEE),
    );
    let sockets = gen.socket_window(0);
    let sm = socket_matrix(&sockets);
    rec.set("socket_flows", sm.nnz() as f64);
    println!(
        "({} events → {} socket flows, median of {ROLLUP_ITERS})",
        sockets.len(),
        sm.nnz()
    );

    let (t_host, hosts) = quick_time(ROLLUP_ITERS, || host_rollup(&sm));
    rec.set("host_rollup_us", micros(t_host));
    println!(
        "| host rollup  | {:>9} | {:>6} → {:>6} cells | {:>5.1} ns/nnz |",
        fmt_dur(t_host),
        sm.nnz(),
        hosts.nnz(),
        t_host.as_nanos() as f64 / sm.nnz() as f64
    );

    let s = PlusTimes::<u64>::new();
    let block = CxPrefix::partial(0, 16); // /16 on the address bits
    let (t_block, blocks) = quick_time(ROLLUP_ITERS, || {
        cxkey::rollup(socket_schema(), &sm, block, RollupAxes::Both, s)
    });
    rec.set("block16_rollup_us", micros(t_block));
    println!(
        "| /16 rollup   | {:>9} | {:>6} → {:>6} cells |",
        fmt_dur(t_block),
        sm.nnz(),
        blocks.nnz()
    );
    // Conservation: every rollup is a pure regrouping of the same packets.
    let total: u64 = sm.iter().map(|(_, _, v)| *v).sum();
    for m in [&hosts, &blocks] {
        assert_eq!(m.iter().map(|(_, _, v)| *v).sum::<u64>(), total);
    }
    println!("✓ packet totals conserved through every prefix");

    // ---- Algebraically-selected parent BFS ----
    println!("=== onestep: fused one-step vs two-step parent BFS ===");
    let g = rmat_dcsr(
        RmatParams {
            scale: BFS_SCALE,
            edge_factor: 8,
            ..Default::default()
        },
        1,
        PlusTimes::<f64>::new(),
    );
    let pat = pattern_u64(&g);
    assert!(
        selects_one_step(&MinFirst),
        "MinFirst must pass the one-step conditions"
    );
    let ctx = OpCtx::new();
    let (t_one, one) = quick_time(BFS_ITERS, || parent_bfs_fused_ctx(&ctx, &pat, 0, MinFirst));
    let (t_two, two) = quick_time(BFS_ITERS, || {
        parent_bfs_two_step_ctx(&ctx, &pat, 0, MinFirst)
    });
    assert_eq!(one, two, "fused and two-step parents diverged");
    rec.set("bfs_one_step_us", micros(t_one));
    rec.set("bfs_two_step_us", micros(t_two));
    rec.set("bfs_reached", one.len() as f64);
    println!(
        "(RMAT scale {BFS_SCALE}, {} edges, {} reached, median of {BFS_ITERS})",
        pat.nnz(),
        one.len()
    );
    println!("| one-step | {:>9} |", fmt_dur(t_one));
    println!(
        "| two-step | {:>9} | {:.2}× the fused cost |",
        fmt_dur(t_two),
        t_two.as_secs_f64() / t_one.as_secs_f64()
    );
    println!("✓ identical parent vectors; the algebra earned its fused path");
    rec
}

fn criterion_benches(c: &mut Criterion) {
    let gen = TrafficGen::new(
        GenConfig::new()
            .with_hosts(HOSTS)
            .with_events_per_window(EVENTS_PER_WINDOW)
            .with_seed(0xC0FFEE),
    );
    let sm = socket_matrix(&gen.socket_window(0));
    let g = rmat_dcsr(
        RmatParams {
            scale: BFS_SCALE,
            edge_factor: 8,
            ..Default::default()
        },
        1,
        PlusTimes::<f64>::new(),
    );
    let pat = pattern_u64(&g);
    let ctx = OpCtx::new();

    let mut group = c.benchmark_group("cxkey_onestep");
    group.sample_size(10);
    group.bench_function("host_rollup", |b| b.iter(|| host_rollup(&sm)));
    group.bench_function("bfs_one_step", |b| {
        b.iter(|| parent_bfs_fused_ctx(&ctx, &pat, 0, MinFirst))
    });
    group.bench_function("bfs_two_step", |b| {
        b.iter(|| parent_bfs_two_step_ctx(&ctx, &pat, 0, MinFirst))
    });
    group.finish();
}

fn main() {
    let rec = shape_report();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cxkey.json");
    match rec.write(path) {
        Ok(()) => println!("recorded medians → {path}"),
        Err(e) => println!("could not record {path}: {e}"),
    }
    let mut c = Criterion::default().configure_from_args();
    criterion_benches(&mut c);
    c.final_summary();
}
