//! **Fig. 4** — dense, sparse, and hypersparse regimes.
//!
//! Two sweeps over an `N × N` array:
//!
//! * fixed `nnz = 2¹⁶`, growing `N` — dense/bitmap storage explodes as
//!   `N²`, CSR as `N`, DCSR stays `O(nnz)`: the figure's three regimes;
//! * fixed `N = 2¹²`, growing `nnz` — the automatic format policy should
//!   walk DCSR → CSR → bitmap → dense as occupancy rises.
//!
//! SpMV is timed per materializable format; the policy's chosen format is
//! asserted to match the figure's regime at each point.

use bench::{fmt_bytes, fmt_dur, quick_time};
use criterion::Criterion;
use hypersparse::gen::random_dcsr;
use hypersparse::{Format, Ix, Matrix, SparseVec};
use semiring::PlusTimes;

fn s() -> PlusTimes<f64> {
    PlusTimes::new()
}

fn vec_for(n: Ix) -> SparseVec<f64> {
    SparseVec::from_entries(n, (0..64.min(n)).map(|i| (i, 1.0)).collect(), s())
}

fn shape_report() {
    println!("=== Fig. 4: storage by regime (fixed nnz = 65536, growing N) ===");
    println!("| N        | dense bytes | bitmap     | CSR        | DCSR       | auto format |");
    for log_n in [8u32, 10, 12, 16, 20, 24, 40] {
        let n: Ix = 1 << log_n;
        let nnz = 1usize << 16;
        let d = random_dcsr(n, n, nnz, 3, s());
        let auto = Matrix::from_dcsr(d.clone(), s());

        let cell = |fmt: Format| -> String {
            // Dense/bitmap/CSR only materialize within policy caps.
            let feasible = match fmt {
                Format::Dense | Format::Bitmap => (n as u128) * (n as u128) <= 1 << 24,
                Format::Csr => n <= 1 << 26,
                Format::Dcsr => true,
            };
            if !feasible {
                return "—".to_string();
            }
            let m = auto.clone().with_format(fmt, s());
            fmt_bytes(m.bytes())
        };
        println!(
            "| 2^{:<6} | {:>11} | {:>10} | {:>10} | {:>10} | {:?} |",
            log_n,
            cell(Format::Dense),
            cell(Format::Bitmap),
            cell(Format::Csr),
            cell(Format::Dcsr),
            auto.format(),
        );
    }

    println!("\n=== Fig. 4: SpMV by format (N = 4096, nnz sweep) ===");
    println!(
        "| nnz      | occupancy | dense      | bitmap     | CSR        | DCSR       | auto    |"
    );
    let n: Ix = 4096;
    for &nnz in &[1_000usize, 40_000, 1_000_000, 8_000_000] {
        let d = random_dcsr(n, n, nnz, 4, s());
        let auto = Matrix::from_dcsr(d, s());
        let v = vec_for(n);
        let mut cells = Vec::new();
        for fmt in [Format::Dense, Format::Bitmap, Format::Csr, Format::Dcsr] {
            let m = auto.clone().with_format(fmt, s());
            let (t, _) = quick_time(3, || m.mxv(&v, s()));
            cells.push(fmt_dur(t));
        }
        println!(
            "| {:>8} | {:>8.4} | {:>10} | {:>10} | {:>10} | {:>10} | {:?} |",
            auto.nnz(),
            auto.nnz() as f64 / (n as f64 * n as f64),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            auto.format(),
        );
    }

    // Regime assertions: the policy tracks the figure.
    let hyper = Matrix::from_dcsr(random_dcsr(1 << 40, 1 << 40, 1000, 5, s()), s());
    assert_eq!(hyper.format(), Format::Dcsr, "nnz ≪ N must be hypersparse");
    let sparse = Matrix::from_dcsr(random_dcsr(1 << 16, 1 << 16, 1 << 16, 6, s()), s());
    assert_eq!(sparse.format(), Format::Csr, "nnz ≈ N must be CSR");
    let dense = Matrix::from_dcsr(random_dcsr(64, 64, 4096, 7, s()), s());
    assert!(
        matches!(dense.format(), Format::Dense | Format::Bitmap),
        "nnz ≈ N² must be full-ish, got {:?}",
        dense.format()
    );
    println!("✓ automatic format policy reproduces the Fig. 4 regimes");
}

fn criterion_benches(c: &mut Criterion) {
    let n: Ix = 4096;
    let v = vec_for(n);
    for &(label, nnz) in &[
        ("hypersparse_1k", 1_000usize),
        ("sparse_40k", 40_000),
        ("dense_4m", 4_000_000),
    ] {
        let auto = Matrix::from_dcsr(random_dcsr(n, n, nnz, 8, s()), s());
        let mut group = c.benchmark_group(format!("fig4/spmv_{label}"));
        group.sample_size(20);
        for fmt in [Format::Dense, Format::Bitmap, Format::Csr, Format::Dcsr] {
            let m = auto.clone().with_format(fmt, s());
            group.bench_function(format!("{fmt:?}"), |b| b.iter(|| m.mxv(&v, s())));
        }
        group.finish();
    }
}

fn main() {
    shape_report();
    let mut c = Criterion::default().configure_from_args();
    criterion_benches(&mut c);
    c.final_summary();
}
