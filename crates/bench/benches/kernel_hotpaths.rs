//! Kernel hot-path trajectory (DESIGN.md §13): the pinned medians
//! behind `BENCH_kernels.json` and the CI perf gate.
//!
//! Every row measures one tentpole optimization against the baseline it
//! replaced, on the workload where it is supposed to pay:
//!
//! * **u32 vs u64 column ids** — uniform SpGEMM and ewise union, where
//!   index bytes dominate streamed bandwidth;
//! * **monomorphic vs generic semiring loops** — PlusTimes/f64 SpGEMM
//!   and push-mode vxm, LorLand word-merge ewise, toggled via
//!   `OpCtx::set_fast_paths` so both sides run the same sharding;
//! * **merge-path weighted shards vs fixed spans** — SpGEMM on an
//!   RMAT-skewed graph at 4 threads, where fixed row spans serialize
//!   behind the hub rows.
//!
//! The JSON artifact holds lower-is-better nanosecond medians;
//! `perf_gate` fails CI when any of them regresses >10%.

use bench::{fmt_dur, quick_time, BenchRecord};
use hypersparse::gen::{random_dcsr, rmat_dcsr, RmatParams};
use hypersparse::{ops, Coo, Dcsr, Ix, OpCtx, SparseVec};
use semiring::{LorLand, PlusTimes};
use std::time::Duration;

fn s() -> PlusTimes<f64> {
    PlusTimes::new()
}

/// Median nanoseconds of `iters` timed runs (one warmup inside).
fn med(iters: usize, f: impl FnMut() -> u64) -> f64 {
    let (d, _keep) = quick_time(iters, f);
    d.as_nanos() as f64
}

/// Boolean matrix over a random pattern with stored `false` values, so
/// the word-merge path carries real presence/truth traffic.
fn bool_mat(n: Ix, nnz: usize, seed: u64) -> Dcsr<bool> {
    let pat = random_dcsr(n, n, nnz, seed, s());
    let mut c = Coo::new(n, n);
    for (i, j, _) in pat.iter() {
        c.push(i, j, true);
    }
    let (nr, nc, rows, rowptr, colidx, mut vals) = c.build_dcsr(LorLand).into_parts();
    for v in vals.iter_mut().step_by(5) {
        *v = false;
    }
    Dcsr::from_parts(nr, nc, rows, rowptr, colidx, vals)
}

/// ~`k`-vertex unit frontier over the non-empty rows of `g`.
fn frontier_of(g: &Dcsr<f64>, k: usize) -> SparseVec<f64> {
    let rows: Vec<Ix> = g.iter_rows().map(|(r, _, _)| r).collect();
    let step = (rows.len() / k.max(1)).max(1);
    SparseVec::from_entries(
        g.nrows(),
        rows.iter()
            .step_by(step)
            .map(|&r| (r, 1.0 + r as f64))
            .collect(),
        s(),
    )
}

struct Row {
    key: &'static str,
    ns: f64,
}

fn report(rec: &mut BenchRecord, label: &str, rows: Vec<Row>) {
    println!("--- {label} ---");
    let base = rows.first().map(|r| r.ns).unwrap_or(1.0);
    for r in &rows {
        println!(
            "| {:<24} | {:>10} | {:>5.2}x |",
            r.key,
            fmt_dur(Duration::from_nanos(r.ns as u64)),
            base / r.ns.max(1.0)
        );
        rec.set(r.key, r.ns.round());
    }
}

fn main() {
    println!("=== Kernel hot paths: pinned medians (DESIGN.md §13) ===");
    let mut rec = BenchRecord::new("kernel_hotpaths");
    let fast = OpCtx::new();
    let slow = OpCtx::new();
    slow.set_fast_paths(false);

    // Uniform SpGEMM: generic loop vs monomorphic f64 vs narrow ids.
    let a = random_dcsr(3_000, 3_000, 60_000, 11, s());
    let b = random_dcsr(3_000, 3_000, 60_000, 12, s());
    let (a32, b32) = (
        a.to_index_width::<u32>().unwrap(),
        b.to_index_width::<u32>().unwrap(),
    );
    report(
        &mut rec,
        "SpGEMM, uniform 3000x3000, 60k nnz",
        vec![
            Row {
                key: "mxm_uniform_generic_ns",
                ns: med(7, || ops::mxm_ctx(&slow, &a, &b, s()).nnz() as u64),
            },
            Row {
                key: "mxm_uniform_u64_ns",
                ns: med(7, || ops::mxm_ctx(&fast, &a, &b, s()).nnz() as u64),
            },
            Row {
                key: "mxm_uniform_u32_ns",
                ns: med(7, || ops::mxm_ctx(&fast, &a32, &b32, s()).nnz() as u64),
            },
        ],
    );

    // Skewed SpGEMM: fixed row spans vs merge-path weighted shards.
    let g = rmat_dcsr(
        RmatParams {
            scale: 12,
            edge_factor: 8,
            probs: (0.57, 0.19, 0.19, 0.05),
        },
        7,
        s(),
    );
    let weighted = OpCtx::new().with_threads(4);
    let fixed = OpCtx::new().with_threads(4);
    fixed.set_shard_balancing(false);
    report(
        &mut rec,
        "SpGEMM, RMAT scale 12, 4 threads",
        vec![
            Row {
                key: "mxm_rmat_fixed_ns",
                ns: med(5, || ops::mxm_ctx(&fixed, &g, &g, s()).nnz() as u64),
            },
            Row {
                key: "mxm_rmat_weighted_ns",
                ns: med(5, || ops::mxm_ctx(&weighted, &g, &g, s()).nnz() as u64),
            },
        ],
    );

    // Push-mode vxm: generic hash scatter vs monomorphic flat
    // accumulator vs narrow ids, on a busy RMAT frontier.
    let h = rmat_dcsr(
        RmatParams {
            scale: 13,
            edge_factor: 8,
            probs: (0.57, 0.19, 0.19, 0.05),
        },
        9,
        s(),
    );
    let h32 = h.to_index_width::<u32>().unwrap();
    let v = frontier_of(&h, 800);
    let v32 = v.to_index_width::<u32>().unwrap();
    report(
        &mut rec,
        "vxm push, RMAT scale 13, ~800-vertex frontier",
        vec![
            Row {
                key: "vxm_push_generic_ns",
                ns: med(9, || ops::vxm_push_ctx(&slow, &v, &h, s()).nnz() as u64),
            },
            Row {
                key: "vxm_push_mono_ns",
                ns: med(9, || ops::vxm_push_ctx(&fast, &v, &h, s()).nnz() as u64),
            },
            Row {
                key: "vxm_push_u32_ns",
                ns: med(9, || ops::vxm_push_ctx(&fast, &v32, &h32, s()).nnz() as u64),
            },
        ],
    );

    // Boolean ewise union: generic two-pointer merge vs word-at-a-time
    // bitmaps (rows dense enough that the per-pair gate engages).
    let ba = bool_mat(2_048, 180_000, 21);
    let bb = bool_mat(2_048, 180_000, 22);
    report(
        &mut rec,
        "ewise union, bool 2048x2048, 180k nnz",
        vec![
            Row {
                key: "ewise_bool_generic_ns",
                ns: med(9, || {
                    ops::ewise_add_ctx(&slow, &ba, &bb, LorLand).nnz() as u64
                }),
            },
            Row {
                key: "ewise_bool_word_ns",
                ns: med(9, || {
                    ops::ewise_add_ctx(&fast, &ba, &bb, LorLand).nnz() as u64
                }),
            },
        ],
    );

    // f64 ewise union: u64 vs u32 column ids.
    let ea = random_dcsr(4_000, 4_000, 120_000, 31, s());
    let eb = random_dcsr(4_000, 4_000, 120_000, 32, s());
    let (ea32, eb32) = (
        ea.to_index_width::<u32>().unwrap(),
        eb.to_index_width::<u32>().unwrap(),
    );
    report(
        &mut rec,
        "ewise union, f64 4000x4000, 120k nnz",
        vec![
            Row {
                key: "ewise_add_u64_ns",
                ns: med(9, || ops::ewise_add_ctx(&fast, &ea, &eb, s()).nnz() as u64),
            },
            Row {
                key: "ewise_add_u32_ns",
                ns: med(9, || {
                    ops::ewise_add_ctx(&fast, &ea32, &eb32, s()).nnz() as u64
                }),
            },
        ],
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    match rec.write(path) {
        Ok(()) => println!("recorded {} medians → {path}", rec.len()),
        Err(e) => println!("could not record {path}: {e}"),
    }
}
