//! Netflow subsystem throughput: windowed ingest through the sharded
//! pipeline plus detector/analytics latency against closed windows.
//!
//! The subsystem claim under test: window rotation keeps the ingest
//! path hypersparse and cheap (the marker wave is one message per
//! shard), and detector queries are reduce/top-k/select/rollup passes
//! over an immutable snapshot — microseconds on a realistic window, so
//! online detection never backs up ingest. Medians land in
//! `BENCH_netflow.json` at the repo root; the `ingest_ns_per_event` and
//! per-detector `_us` keys are pinned by the CI gate, the throughput
//! numbers ride along informationally.

use std::time::Duration;

use bench::{fmt_dur, quick_time, BenchRecord};
use criterion::Criterion;
use netflow::{GenConfig, NetflowConfig, NetflowQuery, NetflowService, TrafficGen};
use pipeline::PipelineConfig;

const HOSTS: u32 = 512;
const EVENTS_PER_WINDOW: usize = 20_000;
const WINDOWS: usize = 3;
const ROUNDS: usize = 3;
const DETECT_ITERS: usize = 20;

fn service(shards: usize) -> NetflowService {
    NetflowService::new(
        NetflowConfig::new()
            .with_pipeline(PipelineConfig::new().with_shards(shards))
            .with_thresholds(256, 256),
    )
}

fn generator() -> TrafficGen {
    TrafficGen::new(
        GenConfig::new()
            .with_hosts(HOSTS)
            .with_events_per_window(EVENTS_PER_WINDOW)
            .with_scan(1, 400)
            .with_ddos(1, 350),
    )
}

/// Median wall time to stream `WINDOWS` windows (ingest + rotation) at
/// one shard count. Rotation barriers on the marker wave, so the clock
/// covers every event landing in its shard, not just channel enqueue.
fn ingest_median(shards: usize, windows: &[Vec<netflow::FlowEvent>]) -> (Duration, u64) {
    let mut times: Vec<Duration> = Vec::with_capacity(ROUNDS);
    let mut flows = 0;
    for _ in 0..ROUNDS {
        let svc = service(shards);
        let t = std::time::Instant::now();
        for events in windows {
            for batch in events.chunks(1024) {
                svc.ingest(batch).unwrap();
            }
            flows = svc.close_window().unwrap().nnz() as u64;
        }
        times.push(t.elapsed());
        svc.shutdown().unwrap();
    }
    times.sort();
    (times[times.len() / 2], flows)
}

fn shape_report() -> BenchRecord {
    println!("=== Netflow: windowed ingest + detector latency ===");
    println!(
        "({HOSTS} hosts, {EVENTS_PER_WINDOW} events/window × {WINDOWS} windows, median of {ROUNDS})"
    );
    let mut rec = BenchRecord::new("netflow_throughput");
    let gen = generator();
    let windows: Vec<Vec<netflow::FlowEvent>> = (0..WINDOWS).map(|w| gen.window(w)).collect();
    let total_events: usize = windows.iter().map(Vec::len).sum();

    println!("| shards | events/s | ns/event |");
    for shards in [1usize, 2, 4] {
        let (t, _) = ingest_median(shards, &windows);
        let ns_per_event = t.as_nanos() as f64 / total_events as f64;
        let events_per_sec = total_events as f64 / t.as_secs_f64();
        println!("| {shards:>6} | {events_per_sec:>8.0} | {ns_per_event:>8.0} |");
        if shards == 2 {
            // Pin the 2-shard ingest cost; throughput is informational.
            rec.set("ingest_ns_per_event", ns_per_event.round());
            rec.set("ingest_events_per_sec", events_per_sec.round());
        }
    }

    // Detector/analytics latency against one closed attack window.
    let svc = service(2);
    for batch in windows[1].chunks(1024) {
        svc.ingest(batch).unwrap();
    }
    let snap = svc.close_window().unwrap();
    rec.set("flows_per_window", snap.nnz() as f64);
    println!(
        "--- query latency on a closed window ({} flows) ---",
        snap.nnz()
    );
    let queries: [(&str, NetflowQuery); 5] = [
        (
            "scan_suspects",
            NetflowQuery::ScanSuspects { min_fanout: 256 },
        ),
        ("ddos_victims", NetflowQuery::DdosVictims { min_fanin: 256 }),
        ("top_talkers", NetflowQuery::TopTalkers { k: 10 }),
        ("rollup_16", NetflowQuery::Rollup { prefix: 16, k: 10 }),
        (
            "drilldown",
            NetflowQuery::SuspectTraffic {
                sources: vec![gen.host_addr(0)],
            },
        ),
    ];
    for (label, q) in &queries {
        let (t, resp) = quick_time(DETECT_ITERS, || svc.query_snapshot(&snap, q));
        println!(
            "| {:>13} | {:>9} | epoch {} |",
            label,
            fmt_dur(t),
            resp.epoch
        );
        rec.set(
            &format!("{label}_us"),
            (t.as_nanos() as f64 / 1e3 * 10.0).round() / 10.0,
        );
    }

    // Rotation latency on an already-empty window: the pure marker-wave
    // + assemble cost a window close pays over ingest.
    let (t, _) = quick_time(DETECT_ITERS, || svc.close_window().unwrap());
    println!("| {:>13} | {:>9} |", "empty_rotate", fmt_dur(t));
    rec.set(
        "empty_rotate_us",
        (t.as_nanos() as f64 / 1e3 * 10.0).round() / 10.0,
    );
    svc.shutdown().unwrap();
    println!("✓ detectors answer in µs against windows ingested at Mevents/s");
    rec
}

fn criterion_benches(c: &mut Criterion) {
    // Steady-state detector kernels on one pinned attack window.
    let gen = generator();
    let svc = service(2);
    for batch in gen.window(1).chunks(1024) {
        svc.ingest(batch).unwrap();
    }
    let snap = svc.close_window().unwrap();

    let mut group = c.benchmark_group("netflow/query");
    group.sample_size(20);
    group.bench_function("scan_suspects", |b| {
        let q = NetflowQuery::ScanSuspects { min_fanout: 256 };
        b.iter(|| svc.query_snapshot(&snap, &q))
    });
    group.bench_function("top_talkers", |b| {
        let q = NetflowQuery::TopTalkers { k: 10 };
        b.iter(|| svc.query_snapshot(&snap, &q))
    });
    group.bench_function("rollup_16", |b| {
        let q = NetflowQuery::Rollup { prefix: 16, k: 10 };
        b.iter(|| svc.query_snapshot(&snap, &q))
    });
    group.finish();
    svc.shutdown().unwrap();
}

fn main() {
    let rec = shape_report();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_netflow.json");
    match rec.write(path) {
        Ok(()) => println!("recorded medians → {path}"),
        Err(e) => println!("could not record {path}: {e}"),
    }
    let mut c = Criterion::default().configure_from_args();
    criterion_benches(&mut c);
    c.final_summary();
}
