//! Ablation: the DNN inference stack rebuild (DESIGN.md §11).
//!
//! Three formulations of Fig. 8's RadiX-Net inference
//! (1024 neurons × fanin 32 × 12 layers), swept over 1/2/4/8 threads:
//!
//! * **seed two-pass** — the pre-refactor shape: one `mxm` materializing
//!   the full `Y W` product, then a separate bias+ReLU prune pass
//!   (`infer_two_semiring`, driven through the default ctx);
//! * **ctx fused** — `DnnCtx` driving `mxm_apply_prune_ctx`, which folds
//!   `max(x + b, 0)` and zero-dropping into the accumulator drain so the
//!   intermediate product never materializes;
//! * **dense** — sparse weights against a dense activation panel.
//!
//! Outputs must be bit-identical across formulations and thread counts
//! (deterministic row sharding), and fused must not lose to two-pass.

use bench::{fmt_dur, quick_time};
use criterion::Criterion;
use dnn::infer::{equivalent, infer_dense, infer_two_semiring};
use dnn::input::sparse_batch;
use dnn::radix::{radix_net, RadixNetParams};
use dnn::{DnnCtx, SparseDnn};
use hypersparse::{with_default_ctx, Dcsr, DenseMat};
use semiring::PlusTimes;

const N: u64 = 1024;
const FANIN: u64 = 32;
const DEPTH: usize = 12;
const BATCH: u64 = 32;

fn workload() -> (SparseDnn, Dcsr<f64>) {
    let net = radix_net(
        RadixNetParams {
            n_neurons: N,
            fanin: FANIN,
            depth: DEPTH,
            bias: -0.3,
        },
        11,
    );
    let y0 = sparse_batch(BATCH, N, 0.08, 13);
    (net, y0)
}

fn shape_report() {
    let (net, y0) = workload();
    println!("=== Ablation: DNN inference — seed two-pass vs ctx fused vs dense ===");
    println!("(RadiX-Net {N}×{FANIN}×{DEPTH}, batch {BATCH})");
    println!("| threads | seed two-pass | ctx fused  | dense      | fused/seed |");

    let reference = DnnCtx::with_threads(1).infer(&net, &y0);
    let dense_in = DenseMat::from_dcsr(&y0, PlusTimes::<f64>::new());

    for &threads in &[1usize, 2, 4, 8] {
        // Seed path: two-pass oscillation on the thread-capped default ctx.
        with_default_ctx(|ctx| ctx.set_threads(threads));
        let (t_seed, out_seed) = quick_time(5, || infer_two_semiring(&net, &y0));
        with_default_ctx(|ctx| ctx.set_threads(0));

        // Tentpole path: DnnCtx driving the fused bias+ReLU prune kernel.
        let driver = DnnCtx::with_threads(threads);
        let (t_fused, out_fused) = quick_time(5, || driver.infer(&net, &y0));

        assert_eq!(
            out_seed, reference,
            "two-pass diverged at {threads} threads"
        );
        assert_eq!(out_fused, reference, "fused diverged at {threads} threads");

        let (t_dense, out_dense) = quick_time(3, || infer_dense(&net, &dense_in));
        assert!(equivalent(&reference, &out_dense, 1e-9), "sparse ≠ dense");

        println!(
            "| {:>7} | {:>13} | {:>10} | {:>10} | {:>9.2}x |",
            threads,
            fmt_dur(t_seed),
            fmt_dur(t_fused),
            fmt_dur(t_dense),
            t_seed.as_secs_f64() / t_fused.as_secs_f64(),
        );
    }
    println!("✓ bit-identical outputs at 1/2/4/8 threads, fused and two-pass");

    // Per-layer observability: the driver's registry must show one
    // dnn_layer record per layer per inference.
    let driver = DnnCtx::new();
    driver.infer(&net, &y0);
    let prom = driver.render_prometheus();
    assert!(
        prom.contains(&format!(
            "hypersparse_kernel_calls_total{{kernel=\"dnn_layer\"}} {DEPTH}"
        )),
        "missing per-layer counters:\n{prom}"
    );
    println!("✓ render_prometheus exposes {DEPTH} dnn_layer kernel calls");
}

fn criterion_benches(c: &mut Criterion) {
    let (net, y0) = workload();
    let mut group = c.benchmark_group("ablation/dnn_inference");
    group.sample_size(10);
    for &threads in &[1usize, 4] {
        let driver = DnnCtx::with_threads(threads);
        group.bench_function(format!("fused_t{threads}"), |b| {
            b.iter(|| driver.infer(&net, &y0))
        });
        group.bench_function(format!("two_pass_t{threads}"), |b| {
            b.iter(|| driver.infer_two_semiring(&net, &y0))
        });
    }
    group.finish();
}

fn main() {
    shape_report();
    let mut c = Criterion::default().configure_from_args();
    criterion_benches(&mut c);
    c.final_summary();
}
