//! Ablation: execution-context workspace reuse (DESIGN.md §OpCtx).
//!
//! Runs the Fig. 3 projection workload `A = E_outᵀ ⊕.⊗ E_in` two ways:
//! a **fresh** `OpCtx` per iteration (every SpGEMM allocates its
//! accumulator scratch from cold) vs one **warm** `OpCtx` reused across
//! iterations (scratch comes from the arena after the first call). The
//! shape report prints throughput for both and the warm context's
//! hit/miss counters; warm must not be slower than fresh.

use bench::{fmt_dur, quick_time};
use criterion::Criterion;
use graph::hypergraph::Hypergraph;
use hypersparse::ops::{mxm_ctx, transpose_ctx};
use hypersparse::{Dcsr, Ix, OpCtx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semiring::PlusTimes;

const N_VERTS: Ix = 1 << 16;

fn s() -> PlusTimes<f64> {
    PlusTimes::new()
}

fn build(n_edges: usize, hyper_frac: f64, seed: u64) -> (Dcsr<f64>, Dcsr<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut h = Hypergraph::new(N_VERTS);
    for _ in 0..n_edges {
        if rng.gen::<f64>() < hyper_frac {
            let srcs: Vec<Ix> = (0..rng.gen_range(1..4usize))
                .map(|_| rng.gen_range(0..N_VERTS))
                .collect();
            let dsts: Vec<Ix> = (0..rng.gen_range(2..8usize))
                .map(|_| rng.gen_range(0..N_VERTS))
                .collect();
            h.add_hyperedge(&srcs, &dsts, 1.0);
        } else {
            let src = rng.gen_range(0..N_VERTS);
            let dst = rng.gen_range(0..N_VERTS);
            h.add_edge(src, dst.max(1), 1.0);
        }
    }
    (h.e_out(), h.e_in())
}

/// One projection under `ctx`: `A = E_outᵀ ⊕.⊗ E_in`.
fn project(ctx: &OpCtx, e_out: &Dcsr<f64>, e_in: &Dcsr<f64>) -> Dcsr<f64> {
    let et = transpose_ctx(ctx, e_out);
    mxm_ctx(ctx, &et, e_in, s())
}

fn shape_report() {
    println!("=== Ablation: OpCtx workspace reuse (Fig. 3 projection) ===");
    println!("| edges   | hyper% | fresh ctx  | warm ctx   | warm/fresh |");
    for &(edges, frac) in &[(30_000usize, 0.0), (100_000, 0.0), (100_000, 0.3)] {
        let (e_out, e_in) = build(edges, frac, 7);

        let (t_fresh, a_fresh) = quick_time(5, || {
            let ctx = OpCtx::new();
            project(&ctx, &e_out, &e_in)
        });
        let warm = OpCtx::new();
        let _ = project(&warm, &e_out, &e_in); // prime the arena
        let (t_warm, a_warm) = quick_time(5, || project(&warm, &e_out, &e_in));

        assert_eq!(a_fresh, a_warm, "ctx reuse changed the projection");
        println!(
            "| {:>7} | {:>5.0}% | {:>10} | {:>10} | {:>9.2}x |",
            edges,
            frac * 100.0,
            fmt_dur(t_fresh),
            fmt_dur(t_warm),
            t_fresh.as_secs_f64() / t_warm.as_secs_f64(),
        );

        let snap = warm.metrics().snapshot();
        println!(
            "    warm arena: {} hits / {} misses, {} pooled buffer(s)",
            snap.workspace_hits,
            snap.workspace_misses,
            warm.pooled_buffers(),
        );
    }
    println!("✓ warm ≡ fresh bit-for-bit; reuse trades allocation for arena hits");
}

fn criterion_benches(c: &mut Criterion) {
    let (e_out, e_in) = build(100_000, 0.3, 7);
    let mut group = c.benchmark_group("ablation/ctx_reuse");
    group.sample_size(10);
    group.bench_function("fresh_ctx", |b| {
        b.iter(|| {
            let ctx = OpCtx::new();
            project(&ctx, &e_out, &e_in)
        })
    });
    let warm = OpCtx::new();
    let _ = project(&warm, &e_out, &e_in);
    group.bench_function("warm_ctx", |b| b.iter(|| project(&warm, &e_out, &e_in)));
    group.finish();
}

fn main() {
    shape_report();
    let mut c = Criterion::default().configure_from_args();
    criterion_benches(&mut c);
    c.final_summary();
}
