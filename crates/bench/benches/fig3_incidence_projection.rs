//! **Figs. 2–3** — incidence arrays and the adjacency projection
//! `A = E_outᵀ ⊕.⊗ E_in`.
//!
//! Sweeps edge count and hyper-edge fraction; compares the SpGEMM
//! projection against a direct hash-accumulation baseline, asserting
//! equal results, and reports how hyper-edges (arity 2–8) inflate the
//! projected adjacency.

use bench::{fmt_dur, quick_time};
use criterion::Criterion;
use graph::hypergraph::{incidence_to_adjacency, incidence_to_adjacency_baseline, Hypergraph};
use hypersparse::Ix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semiring::PlusTimes;

const N_VERTS: Ix = 1 << 16;

fn build(n_edges: usize, hyper_frac: f64, seed: u64) -> Hypergraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut h = Hypergraph::new(N_VERTS);
    for _ in 0..n_edges {
        if rng.gen::<f64>() < hyper_frac {
            let arity_out = rng.gen_range(1..4usize);
            let arity_in = rng.gen_range(2..8usize);
            let srcs: Vec<Ix> = sample_distinct(&mut rng, arity_out);
            let dsts: Vec<Ix> = sample_distinct(&mut rng, arity_in);
            h.add_hyperedge(&srcs, &dsts, 1.0);
        } else {
            let s = rng.gen_range(0..N_VERTS);
            let mut d = rng.gen_range(0..N_VERTS);
            if d == s {
                d = (d + 1) % N_VERTS;
            }
            h.add_edge(s, d, 1.0);
        }
    }
    h
}

fn sample_distinct(rng: &mut StdRng, k: usize) -> Vec<Ix> {
    let mut set = std::collections::BTreeSet::new();
    while set.len() < k {
        set.insert(rng.gen_range(0..N_VERTS));
    }
    set.into_iter().collect()
}

fn shape_report() {
    println!("=== Fig. 3: A = E_outᵀ ⊕.⊗ E_in — SpGEMM vs hash baseline ===");
    println!("| edges   | hyper% | nnz(E)   | nnz(A)   | SpGEMM     | hash       |");
    for &edges in &[10_000usize, 100_000, 300_000] {
        for &frac in &[0.0, 0.1, 0.3] {
            let h = build(edges, frac, 7);
            let (e_out, e_in) = (h.e_out(), h.e_in());
            let s = PlusTimes::<f64>::new();
            let (t_mxm, a) = quick_time(3, || incidence_to_adjacency(&e_out, &e_in, s));
            let (t_hash, base) = quick_time(3, || incidence_to_adjacency_baseline(&e_out, &e_in));
            let got: Vec<(Ix, Ix, f64)> = a.iter().map(|(i, j, &v)| (i, j, v)).collect();
            assert_eq!(got.len(), base.len(), "projection mismatch");
            for ((gi, gj, gv), (bi, bj, bv)) in got.iter().zip(&base) {
                assert_eq!((gi, gj), (bi, bj));
                assert!((gv - bv).abs() < 1e-9);
            }
            println!(
                "| {:>7} | {:>5.0}% | {:>8} | {:>8} | {:>10} | {:>10} |",
                edges,
                frac * 100.0,
                e_out.nnz() + e_in.nnz(),
                a.nnz(),
                fmt_dur(t_mxm),
                fmt_dur(t_hash),
            );
        }
    }
    println!("✓ SpGEMM projection ≡ hash baseline at every point");
    println!("  (hyper-edges inflate nnz(A): each event implies |out|×|in| pairs — Fig. 2)");
}

fn criterion_benches(c: &mut Criterion) {
    let s = PlusTimes::<f64>::new();
    for &frac in &[0.0, 0.3] {
        let h = build(100_000, frac, 7);
        let (e_out, e_in) = (h.e_out(), h.e_in());
        let mut group = c.benchmark_group(format!("fig3/hyper{:.0}pct", frac * 100.0));
        group.sample_size(10);
        group.bench_function("spgemm_projection", |b| {
            b.iter(|| incidence_to_adjacency(&e_out, &e_in, s))
        });
        group.bench_function("hash_baseline", |b| {
            b.iter(|| incidence_to_adjacency_baseline(&e_out, &e_in))
        });
        group.finish();
    }
}

fn main() {
    shape_report();
    let mut c = Criterion::default().configure_from_args();
    criterion_benches(&mut c);
    c.final_summary();
}
