//! **Table II** — associative array operations and properties.
//!
//! Verifies each algebraic law at benchmark scale, then times every
//! Table II operation on random string-keyed associative arrays across
//! three sizes.

use bench::{fmt_dur, quick_time};
use criterion::Criterion;
use hyperspace_core::Assoc;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semiring::{PlusMonoid, PlusTimes};

type A = Assoc<String, String, f64>;

fn s() -> PlusTimes<f64> {
    PlusTimes::new()
}

/// Random string-keyed array: `nnz` triplets over a `√nnz·4`-key universe.
fn random_assoc(nnz: usize, seed: u64) -> A {
    let mut rng = StdRng::seed_from_u64(seed);
    let keys = ((nnz as f64).sqrt() as usize * 4).max(8);
    let trips = (0..nnz)
        .map(|_| {
            (
                format!("row{:06}", rng.gen_range(0..keys)),
                format!("col{:06}", rng.gen_range(0..keys)),
                1.0 + rng.gen::<f64>(),
            )
        })
        .collect();
    Assoc::from_triplets(trips, s())
}

fn shape_report() {
    println!("=== Table II: associative array operations (regenerated) ===");
    let a = random_assoc(100_000, 1);
    let b = random_assoc(100_000, 2);

    // Laws at scale (positive values → no cancellation surprises).
    assert_eq!(a.ewise_add(&b, s()), b.ewise_add(&a, s()));
    assert_eq!(a.ewise_mul(&b, s()), b.ewise_mul(&a, s()));
    assert_eq!(a.transpose(s()).transpose(s()), a);
    let id = Assoc::identity(a.col_keys().to_vec(), s());
    assert_eq!(a.matmul(&id, s()), a);
    println!("✓ commutativity, transpose involution, A ⊕.⊗ 𝕀 = A at nnz = 100k");

    println!("| operation        | 1k nnz     | 10k nnz    | 100k nnz   |");
    let sizes = [1_000usize, 10_000, 100_000];
    let arrays: Vec<(A, A)> = sizes
        .iter()
        .map(|&n| (random_assoc(n, 3), random_assoc(n, 4)))
        .collect();

    macro_rules! op_row {
        ($name:expr, $f:expr) => {{
            let f = $f;
            let mut cells = Vec::new();
            for (a, b) in &arrays {
                let (t, _) = quick_time(3, || f(a, b));
                cells.push(fmt_dur(t));
            }
            println!(
                "| {:<16} | {:>10} | {:>10} | {:>10} |",
                $name, cells[0], cells[1], cells[2]
            );
        }};
    }

    op_row!("construction", |a: &A, _b: &A| Assoc::from_triplets(
        a.to_triplets(),
        s()
    ));
    op_row!("extraction", |a: &A, _b: &A| a.to_triplets());
    op_row!("transpose", |a: &A, _b: &A| a.transpose(s()));
    op_row!("zero-norm |A|0", |a: &A, _b: &A| a.zero_norm(s()));
    op_row!("ewise add", |a: &A, b: &A| a.ewise_add(b, s()));
    op_row!("ewise mul", |a: &A, b: &A| a.ewise_mul(b, s()));
    op_row!("array mult", |a: &A, b: &A| a.matmul(b, s()));
    op_row!("reduce rows", |a: &A, _b: &A| a
        .reduce_rows(PlusMonoid::<f64>::default()));
    op_row!("permutation", |a: &A, _b: &A| {
        let pairs: Vec<(String, String)> = a
            .row_keys()
            .iter()
            .zip(a.col_keys())
            .map(|(r, c)| (r.clone(), c.clone()))
            .collect();
        Assoc::<String, String, f64>::permutation(pairs, s())
    });
    op_row!("identity", |a: &A, _b: &A| {
        Assoc::<String, String, f64>::identity(a.row_keys().to_vec(), s())
    });
}

fn criterion_benches(c: &mut Criterion) {
    let a = random_assoc(10_000, 5);
    let b = random_assoc(10_000, 6);
    let mut g = c.benchmark_group("table2/ops_10k");
    g.sample_size(20);
    g.bench_function("ewise_add", |bch| bch.iter(|| a.ewise_add(&b, s())));
    g.bench_function("ewise_mul", |bch| bch.iter(|| a.ewise_mul(&b, s())));
    g.bench_function("matmul", |bch| bch.iter(|| a.matmul(&b, s())));
    g.bench_function("transpose", |bch| bch.iter(|| a.transpose(s())));
    g.bench_function("zero_norm", |bch| bch.iter(|| a.zero_norm(s())));
    g.bench_function("reduce_rows", |bch| {
        bch.iter(|| a.reduce_rows(PlusMonoid::<f64>::default()))
    });
    g.finish();
}

fn main() {
    shape_report();
    let mut c = Criterion::default().configure_from_args();
    criterion_benches(&mut c);
    c.final_summary();
}
