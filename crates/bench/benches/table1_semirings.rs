//! **Table I** — selected semirings.
//!
//! Regenerates the table's rows (set, ⊕, ⊗, 0, 1) from the running
//! implementation, then demonstrates the paper's claim that *the same
//! array operations run over every semiring*: one RMAT graph, one SpMV
//! and one SpGEMM per Table I row, timed by Criterion. Topology-only
//! rows (the paper's §V.A point) are asserted to produce identical
//! sparsity patterns.

use bench::{fmt_dur, quick_time};
use criterion::Criterion;
use hypersparse::gen::{rmat_dcsr, RmatParams};
use hypersparse::{Dcsr, SparseVec};
use semiring::{
    MaxMin, MaxPlus, MaxTimes, MinMax, MinPlus, MinTimes, PSet, PlusTimes, Semiring, UnionIntersect,
};

const SCALE: u32 = 13;
const EDGE_FACTOR: usize = 8;

fn graph() -> Dcsr<f64> {
    rmat_dcsr(
        RmatParams {
            scale: SCALE,
            edge_factor: EDGE_FACTOR,
            ..Default::default()
        },
        1,
        PlusTimes::<f64>::new(),
    )
}

fn frontier<S: Semiring<Value = f64>>(n: u64, s: S) -> SparseVec<f64> {
    // Seed the frontier with the semiring 1 ("already here" for paths),
    // built under the same semiring so tropical 0.0 entries survive.
    SparseVec::from_entries(n, (0..64).map(|i| (i * 37 % n, s.one())).collect(), s)
}

fn print_table_row<S: Semiring>(set: &str, add: &str, mul: &str, s: &S)
where
    S::Value: std::fmt::Debug,
{
    println!(
        "| {set:<14} | {add:<4} | {mul:<4} | {:<8} | {:<8} |",
        format!("{:?}", s.zero()),
        format!("{:?}", s.one()),
    );
}

fn shape_report() {
    println!("=== Table I: selected semirings (regenerated) ===");
    println!("| set            | ⊕    | ⊗    | 0        | 1        |");
    print_table_row("ℝ", "+", "×", &PlusTimes::<f64>::new());
    print_table_row("ℝ ∪ −∞", "max", "+", &MaxPlus::<f64>::new());
    print_table_row("ℝ ∪ +∞", "min", "+", &MinPlus::<f64>::new());
    print_table_row("ℝ≥0", "max", "×", &MaxTimes::<f64>::new());
    print_table_row("ℝ>0 ∪ +∞", "min", "×", &MinTimes::<f64>::new());
    print_table_row("𝒫(𝕍)", "∪", "∩", &UnionIntersect);
    print_table_row("𝕍 ∪ −∞", "max", "min", &MaxMin::<f64>::new());
    print_table_row("𝕍 ∪ +∞", "min", "max", &MinMax::<f64>::new());

    let g = graph();
    let n = g.nrows();
    println!(
        "\nworkload: RMAT scale {SCALE} (N = {n}, nnz = {}), SpMV frontier 64, SpGEMM A·A",
        g.nnz()
    );
    println!("| semiring  | SpMV       | SpGEMM     | result nnz |");

    macro_rules! row {
        ($name:expr, $s:expr) => {{
            let s = $s;
            let f = frontier(n, s);
            let (t_spmv, _) = quick_time(5, || f.vxm(&g, s));
            let (t_mxm, c) = quick_time(3, || hypersparse::ops::mxm(&g, &g, s));
            println!(
                "| {:<9} | {:>10} | {:>10} | {:>10} |",
                $name,
                fmt_dur(t_spmv),
                fmt_dur(t_mxm),
                c.nnz()
            );
            c
        }};
    }

    let c1 = row!("+.×", PlusTimes::<f64>::new());
    let c2 = row!("max.+", MaxPlus::<f64>::new());
    let c3 = row!("min.+", MinPlus::<f64>::new());
    let c4 = row!("max.×", MaxTimes::<f64>::new());
    let c5 = row!("min.×", MinTimes::<f64>::new());
    let c6 = row!("max.min", MaxMin::<f64>::new());
    let c7 = row!("min.max", MinMax::<f64>::new());

    // §V.A: topology is semiring-independent (positive weights ⇒ no
    // cancellation anywhere) — all patterns identical.
    let pat: Vec<Vec<(u64, u64)>> = [&c1, &c2, &c3, &c4, &c5, &c6, &c7]
        .iter()
        .map(|c| c.iter().map(|(r, c2, _)| (r, c2)).collect())
        .collect();
    for (i, p) in pat.iter().enumerate().skip(1) {
        assert_eq!(&pat[0], p, "semiring {i} changed the topology!");
    }
    println!("✓ identical sparsity pattern across all seven numeric semirings (§V.A)");

    // The ∪.∩ row runs on set values: every edge carries the same small
    // attribute set, so intersections stay non-empty and the product's
    // *pattern* is comparable with the numeric rows.
    let mut coo = hypersparse::Coo::new(n, n);
    for (r, c, _) in g.iter() {
        coo.push(r, c, PSet::from_iter([0, 1, 2, 3]));
    }
    let gs = coo.build_dcsr(UnionIntersect);
    let (t, c8) = quick_time(1, || hypersparse::ops::mxm(&gs, &gs, UnionIntersect));
    println!(
        "| {:<9} | {:>10} | {:>10} | {:>10} |  (set-valued)",
        "∪.∩",
        "—",
        fmt_dur(t),
        c8.nnz()
    );
    let pat8: Vec<(u64, u64)> = c8.iter().map(|(r, c, _)| (r, c)).collect();
    assert_eq!(pat[0], pat8, "∪.∩ changed the topology!");
    println!("✓ ∪.∩ SpGEMM matches the numeric pattern too");
}

fn criterion_benches(c: &mut Criterion) {
    let g = graph();
    let n = g.nrows();
    let mut group = c.benchmark_group("table1/spmv");
    group.sample_size(20);
    macro_rules! spmv {
        ($name:expr, $s:expr) => {{
            let s = $s;
            let f = frontier(n, s);
            group.bench_function($name, |b| b.iter(|| f.vxm(&g, s)));
        }};
    }
    spmv!("plus_times", PlusTimes::<f64>::new());
    spmv!("max_plus", MaxPlus::<f64>::new());
    spmv!("min_plus", MinPlus::<f64>::new());
    spmv!("max_times", MaxTimes::<f64>::new());
    spmv!("min_times", MinTimes::<f64>::new());
    spmv!("max_min", MaxMin::<f64>::new());
    spmv!("min_max", MinMax::<f64>::new());
    group.finish();

    let mut group = c.benchmark_group("table1/spgemm");
    group.sample_size(10);
    macro_rules! mxm {
        ($name:expr, $s:expr) => {{
            let s = $s;
            group.bench_function($name, |b| b.iter(|| hypersparse::ops::mxm(&g, &g, s)));
        }};
    }
    mxm!("plus_times", PlusTimes::<f64>::new());
    mxm!("min_plus", MinPlus::<f64>::new());
    mxm!("max_min", MaxMin::<f64>::new());
    group.finish();
}

fn main() {
    shape_report();
    let mut c = Criterion::default().configure_from_args();
    criterion_benches(&mut c);
    c.final_summary();
}
