//! **Fig. 5** — graph union and intersection as ⊕ and ⊗.
//!
//! Pairs of random graphs with a controlled edge-overlap fraction:
//! element-wise array kernels vs hash-set baselines, results asserted
//! equal, sizes reported (union shrinks toward one operand and
//! intersection grows with overlap — the figure's two panels).

use bench::{fmt_dur, quick_time};
use criterion::Criterion;
use graph::setops::{graph_intersection, graph_union, intersection_baseline, union_baseline};
use hypersparse::{Coo, Dcsr, Ix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semiring::PlusTimes;

const N: Ix = 1 << 14;
const EDGES: usize = 100_000;

fn s() -> PlusTimes<f64> {
    PlusTimes::new()
}

/// Two graphs sharing `overlap` of their edges.
fn pair(overlap: f64, seed: u64) -> (Dcsr<f64>, Dcsr<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shared = Vec::new();
    let mut only_a = Vec::new();
    let mut only_b = Vec::new();
    let mut seen = std::collections::HashSet::new();
    while shared.len() + only_a.len() < EDGES {
        let e = (rng.gen_range(0..N), rng.gen_range(0..N));
        if !seen.insert(e) {
            continue;
        }
        let w = 1.0 + rng.gen::<f64>();
        if rng.gen::<f64>() < overlap {
            shared.push((e.0, e.1, w));
        } else {
            only_a.push((e.0, e.1, w));
            // A distinct b-only edge of the same weight class.
            loop {
                let eb = (rng.gen_range(0..N), rng.gen_range(0..N));
                if seen.insert(eb) {
                    only_b.push((eb.0, eb.1, 1.0 + rng.gen::<f64>()));
                    break;
                }
            }
        }
    }
    let mut ca = Coo::new(N, N);
    ca.extend(shared.iter().copied());
    ca.extend(only_a.iter().copied());
    let mut cb = Coo::new(N, N);
    cb.extend(shared.iter().copied());
    cb.extend(only_b.iter().copied());
    (ca.build_dcsr(s()), cb.build_dcsr(s()))
}

fn shape_report() {
    println!("=== Fig. 5: graph union (⊕) and intersection (⊗) vs hash baselines ===");
    println!(
        "| overlap | nnz(A∪B) | nnz(A∩B) | ⊕ ewise    | ∪ hash     | ⊗ ewise    | ∩ hash     |"
    );
    for &ov in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        let (a, b) = pair(ov, 11);
        let (ta, u) = quick_time(3, || graph_union(&a, &b, s()));
        let (tb, i) = quick_time(3, || graph_intersection(&a, &b, s()));
        let at = a.to_triplets();
        let bt = b.to_triplets();
        let (tc, ub) = quick_time(3, || union_baseline(&at, &bt, s()));
        let (td, ib) = quick_time(3, || intersection_baseline(&at, &bt, s()));

        // Equality of both formulations.
        assert_eq!(u.to_triplets(), ub, "union mismatch at overlap {ov}");
        assert_eq!(i.to_triplets(), ib, "intersection mismatch at overlap {ov}");

        println!(
            "| {:>6.0}% | {:>8} | {:>8} | {:>10} | {:>10} | {:>10} | {:>10} |",
            ov * 100.0,
            u.nnz(),
            i.nnz(),
            fmt_dur(ta),
            fmt_dur(tc),
            fmt_dur(tb),
            fmt_dur(td),
        );
    }
    println!("✓ ⊕/⊗ kernels ≡ hash-set union/intersection at every overlap");
    println!("  (intersection grows and union shrinks with overlap — Fig. 5's panels)");
}

fn criterion_benches(c: &mut Criterion) {
    let (a, b) = pair(0.5, 11);
    let at = a.to_triplets();
    let bt = b.to_triplets();
    let mut group = c.benchmark_group("fig5/overlap50");
    group.sample_size(20);
    group.bench_function("union_ewise_add", |bch| {
        bch.iter(|| graph_union(&a, &b, s()))
    });
    group.bench_function("union_hash", |bch| {
        bch.iter(|| union_baseline(&at, &bt, s()))
    });
    group.bench_function("intersection_ewise_mul", |bch| {
        bch.iter(|| graph_intersection(&a, &b, s()))
    });
    group.bench_function("intersection_hash", |bch| {
        bch.iter(|| intersection_baseline(&at, &bt, s()))
    });
    group.finish();
}

fn main() {
    shape_report();
    let mut c = Criterion::default().configure_from_args();
    criterion_benches(&mut c);
    c.final_summary();
}
