//! Serving throughput: N reader threads answering the typed query mix
//! against a live writer that keeps ingesting and publishing epochs.
//!
//! The serving claim under test: readers pin epochs zero-copy and never
//! block on publication, so query throughput should scale with reader
//! count while the writer sustains ingest — and p99 latency (from the
//! serving layer's own per-class histograms) stays bounded. Medians
//! land in `BENCH_serving.json` at the repo root, the first entry in
//! the tracked perf trajectory.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use bench::{fmt_dur, BenchRecord};
use criterion::Criterion;
use db::Pred;
use pipeline::{Pipeline, PipelineConfig};
use semiring::PlusTimes;
use serve::{QueryClass, QueryRequest, QueryServer, View, ViewSchema};

const HOSTS: u64 = 64;
const RUN: Duration = Duration::from_millis(250);
const SNAPSHOT_EVERY: u64 = 4_096;
const ROUNDS: usize = 3;

/// The serving query mix, cycling through every class.
fn request(i: u64) -> QueryRequest {
    let h = i % HOSTS;
    match i % 5 {
        0 => QueryRequest::sql(format!("SELECT dst FROM flows WHERE src = 'h{h}'")),
        1 => QueryRequest::Select {
            view: View::Assoc,
            expr: Pred::eq("src", &format!("h{h}"))
                .or(Pred::eq("dst", &format!("h{}", (h + 1) % HOSTS))),
        },
        2 => QueryRequest::Neighbors {
            view: View::Triple,
            host: format!("h{h}"),
        },
        3 => QueryRequest::GroupCount {
            view: View::Row,
            field: "src".into(),
        },
        _ => QueryRequest::Point {
            row: h,
            col: (h * 7) % HOSTS,
        },
    }
}

struct RunStats {
    queries_per_sec: f64,
    writer_events_per_sec: f64,
    epochs_published: u64,
    p99_us: [f64; QueryClass::ALL.len()],
    cache_hit_ratio: f64,
}

/// One timed run: `readers` query threads vs one live writer.
fn run_once(readers: usize) -> RunStats {
    let p = Arc::new(Pipeline::with_config(
        HOSTS,
        HOSTS,
        PlusTimes::<f64>::new(),
        PipelineConfig::new().with_shards(2),
    ));
    let srv = Arc::new(QueryServer::<PlusTimes<f64>>::with_capacity(
        4,
        64,
        ViewSchema::flows(),
    ));
    srv.attach(&p);

    // Seed a populated epoch before the clock starts.
    for i in 0..2_000u64 {
        p.ingest(i % HOSTS, (i * 13) % HOSTS, 1.0).unwrap();
    }
    p.snapshot_shared().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let queries = Arc::new(AtomicU64::new(0));
    let start = Instant::now();

    let writer = {
        let p = Arc::clone(&p);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut k = 0u64;
            while !stop.load(Ordering::Relaxed) {
                p.ingest(k % HOSTS, (k * 31) % HOSTS, 1.0).unwrap();
                k += 1;
                if k.is_multiple_of(SNAPSHOT_EVERY) {
                    p.snapshot_shared().unwrap();
                }
            }
            k
        })
    };

    let handles: Vec<_> = (0..readers)
        .map(|r| {
            let srv = Arc::clone(&srv);
            let stop = Arc::clone(&stop);
            let queries = Arc::clone(&queries);
            thread::spawn(move || {
                let mut i = r as u64;
                while !stop.load(Ordering::Relaxed) {
                    srv.query(&request(i)).unwrap();
                    queries.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            })
        })
        .collect();

    thread::sleep(RUN);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    let events = writer.join().unwrap();
    let elapsed = start.elapsed().as_secs_f64();

    let m = srv.metrics();
    let p99_us = std::array::from_fn(|i| m.latency[i].quantile(0.99) as f64 / 1e3);
    let total = queries.load(Ordering::Relaxed);
    let stats = RunStats {
        queries_per_sec: total as f64 / elapsed,
        writer_events_per_sec: events as f64 / elapsed,
        epochs_published: srv.registry().published(),
        p99_us,
        cache_hit_ratio: m.cache_hits as f64 / (m.cache_hits + m.cache_misses).max(1) as f64,
    };
    Arc::try_unwrap(p).ok().unwrap().shutdown().unwrap();
    stats
}

/// Median-of-`ROUNDS` stats for one reader count.
fn run_median(readers: usize) -> RunStats {
    let mut runs: Vec<RunStats> = (0..ROUNDS).map(|_| run_once(readers)).collect();
    runs.sort_by(|a, b| a.queries_per_sec.total_cmp(&b.queries_per_sec));
    runs.remove(runs.len() / 2)
}

fn shape_report() -> BenchRecord {
    println!("=== Serving throughput: readers vs one live writer ===");
    println!("({RUN:?} per run, median of {ROUNDS}, snapshot every {SNAPSHOT_EVERY} events)");
    let mut rec = BenchRecord::new("serving_throughput");

    println!("| readers | queries/s | writer events/s | epochs | hit ratio |");
    let mut last = None;
    for readers in [1usize, 2, 4, 8] {
        let s = run_median(readers);
        println!(
            "| {:>7} | {:>8.0}  | {:>14.0}  | {:>6} | {:>8.2}  |",
            readers,
            s.queries_per_sec,
            s.writer_events_per_sec,
            s.epochs_published,
            s.cache_hit_ratio,
        );
        rec.set(&format!("readers_{readers}_qps"), s.queries_per_sec.round());
        if readers == 8 {
            rec.set("writer_events_per_sec", s.writer_events_per_sec.round());
            rec.set("epochs_published_8r", s.epochs_published as f64);
            last = Some(s);
        }
    }

    let s = last.expect("8-reader run");
    println!("--- p99 latency by query class (8 readers, live writer) ---");
    for class in QueryClass::ALL {
        let us = s.p99_us[QueryClass::ALL.iter().position(|c| *c == class).unwrap()];
        println!(
            "| {:>11} | {:>9} |",
            class.label(),
            fmt_dur(Duration::from_nanos((us * 1e3) as u64))
        );
        rec.set(
            &format!("p99_{}_us", class.label()),
            (us * 10.0).round() / 10.0,
        );
    }
    println!("✓ readers scale against a live writer; pinning never blocks publication");
    rec
}

fn criterion_benches(c: &mut Criterion) {
    // Steady-state single-query latency on a pinned epoch (no writer):
    // the cache-hit and cache-miss paths the histograms above aggregate.
    let p = Pipeline::new(HOSTS, HOSTS, PlusTimes::<f64>::new());
    let srv = QueryServer::<PlusTimes<f64>>::new(ViewSchema::flows());
    for i in 0..2_000u64 {
        p.ingest(i % HOSTS, (i * 13) % HOSTS, 1.0).unwrap();
    }
    srv.refresh(&p).unwrap();

    let mut group = c.benchmark_group("serve/query");
    group.sample_size(20);
    group.bench_function("sql_cached", |b| {
        let req = QueryRequest::sql("SELECT dst FROM flows WHERE src = 'h1'");
        srv.query(&req).unwrap(); // prime
        b.iter(|| srv.query(&req).unwrap())
    });
    group.bench_function("select_mix_uncached", |b| {
        let mut i = 0u64;
        b.iter(|| {
            // Distinct predicate each iteration defeats the LRU.
            i += 1;
            srv.query(&QueryRequest::Select {
                view: View::Assoc,
                expr: Pred::eq("src", &format!("h{}", i % HOSTS))
                    .and(Pred::eq("dst", &format!("h{}", (i * 13) % HOSTS))),
            })
            .unwrap()
        })
    });
    group.bench_function("point", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            srv.query(&QueryRequest::Point {
                row: i % HOSTS,
                col: (i * 13) % HOSTS,
            })
            .unwrap()
        })
    });
    group.finish();
    p.shutdown().unwrap();
}

fn main() {
    let rec = shape_report();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    match rec.write(path) {
        Ok(()) => println!("recorded medians → {path}"),
        Err(e) => println!("could not record {path}: {e}"),
    }
    let mut c = Criterion::default().configure_from_args();
    criterion_benches(&mut c);
    c.final_summary();
}
