//! Incremental view maintenance vs from-scratch recompute.
//!
//! The claim under test: once a standing view holds state, absorbing one
//! delta wave is O(Δ) — independent of the accumulated window — while the
//! scratch formulation re-reads the whole window every epoch. Four pairs
//! are measured on the same workload:
//!
//! * `delta_fold` vs `full_fold` — the stream-level cut itself:
//!   [`StreamingMatrix::delta_snapshot`] folds only the post-watermark
//!   levels, `snapshot` folds the entire hierarchy;
//! * `incremental_detect` vs `scratch_detect` — fan-out/fan-in detector
//!   state folding one delta + flagging, vs a full `netsec` rescan;
//! * `incremental_tri` vs `scratch_tri` — masked-SpGEMM delta triangle
//!   counting vs recounting the whole symmetrized window;
//! * `pagerank_refresh` vs `pagerank_scratch` — warm-started power
//!   iteration seeded from the prior epoch's vector vs a cold start.
//!
//! Each incremental answer is asserted equal to its scratch counterpart
//! before being timed into `BENCH_incremental.json`; the `_us` keys are
//! pinned by the CI perf gate.

use std::time::{Duration, Instant};

use bench::{fmt_dur, quick_time, BenchRecord};
use criterion::Criterion;
use graph::incremental::{DegreeState, TriangleState};
use graph::pagerank::{pagerank, pagerank_refresh, PageRankOpts};
use graph::{netsec, pattern_f64, symmetrize, triangles};
use hypersparse::{Coo, Dcsr, Ix, StreamConfig, StreamingMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semiring::PlusTimes;

const N: Ix = 4096;
const BASE_WAVES: usize = 16;
const BASE_EVENTS: usize = 10_000;
const WAVE: usize = 500;
const ITERS: usize = 12;
const THRESH: u64 = 56;

type S = PlusTimes<u64>;

fn wave(seed: u64, len: usize) -> Vec<(Ix, Ix, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| (rng.gen_range(0..N), rng.gen_range(0..N), 1u64))
        .collect()
}

/// Chain-structured base graph for the PageRank pair: 64-vertex directed
/// chains with a second local hop. Uniform random graphs mix so fast
/// (|λ₂| ≈ deg^-1/2) that even a cold uniform seed converges in a
/// handful of iterations; chains have slow modes that decay at the
/// damping rate, which is the regime where warm restarts matter.
fn chain_graph() -> Dcsr<u64> {
    let mut c = Coo::new(N, N);
    for i in 0..N {
        if i % 64 < 63 {
            c.push(i, i + 1, 1u64);
        }
        if i % 64 < 62 {
            c.push(i, i + 2, 1u64);
        }
    }
    c.build_dcsr(S::new())
}

fn build(events: &[(Ix, Ix, u64)]) -> Dcsr<u64> {
    let mut c = Coo::new(N, N);
    c.extend(events.iter().copied());
    c.build_dcsr(S::new())
}

fn median(mut times: Vec<Duration>) -> Duration {
    times.sort();
    times[times.len() / 2]
}

fn us(d: Duration) -> f64 {
    (d.as_nanos() as f64 / 1e3 * 10.0).round() / 10.0
}

fn row(
    rec: &mut BenchRecord,
    label: &str,
    inc_key: &str,
    inc: Duration,
    scr_key: &str,
    scr: Duration,
) {
    println!(
        "| {label:>13} | incremental {:>9} | scratch {:>9} | {:>5.1}x |",
        fmt_dur(inc),
        fmt_dur(scr),
        scr.as_secs_f64() / inc.as_secs_f64().max(1e-12),
    );
    rec.set(inc_key, us(inc));
    rec.set(scr_key, us(scr));
}

fn shape_report() -> BenchRecord {
    println!("=== Incremental views: O(Δ) maintenance vs per-epoch recompute ===");
    println!(
        "({N}² key space, {BASE_WAVES}×{BASE_EVENTS} accumulated + {ITERS} measured waves of {WAVE}, medians)"
    );
    let mut rec = BenchRecord::new("incremental_view");
    let s = S::new();

    // --- Stream-level fold: delta cut vs full hierarchy fold. ---------
    let mut m = StreamingMatrix::with_config(N, N, s, StreamConfig::new());
    for w in 0..BASE_WAVES {
        for &(r, c, v) in &wave(w as u64, BASE_EVENTS) {
            m.insert(r, c, v);
        }
    }
    let _ = m.delta_snapshot(); // seal the accumulated window
    let mut delta_times = Vec::with_capacity(ITERS);
    for i in 0..ITERS {
        for &(r, c, v) in &wave(100 + i as u64, WAVE) {
            m.insert(r, c, v);
        }
        let t = Instant::now();
        let d = m.delta_snapshot();
        delta_times.push(t.elapsed());
        assert!(d.nnz() > 0);
    }
    let (full_t, full_now) = quick_time(ITERS, || m.snapshot());
    rec.set("window_nnz", full_now.nnz() as f64);
    println!("--- per-epoch cost, window at {} nnz ---", full_now.nnz());
    row(
        &mut rec,
        "stream_fold",
        "delta_fold_us",
        median(delta_times),
        "full_fold_us",
        full_t,
    );

    // --- Standing detector + triangle state vs scratch rescan. --------
    let mut deg = DegreeState::new(N, N);
    let mut tri = TriangleState::new(N);
    let mut full = Dcsr::<u64>::empty(N, N);
    for w in 0..BASE_WAVES {
        let d = build(&wave(w as u64, BASE_EVENTS));
        deg.apply_delta(&d);
        tri.apply_delta(&d);
        full = hypersparse::ops::ewise_add(&full, &d, s);
    }
    let mut inc_detect = Vec::new();
    let mut scr_detect = Vec::new();
    let mut inc_tri = Vec::new();
    let mut scr_tri = Vec::new();
    for i in 0..ITERS {
        let d = build(&wave(100 + i as u64, WAVE));
        full = hypersparse::ops::ewise_add(&full, &d, s);

        let t = Instant::now();
        deg.apply_delta(&d);
        let flags = deg.scan_suspects(THRESH);
        inc_detect.push(t.elapsed());
        let t = Instant::now();
        let scratch_flags = netsec::scan_suspects(&full, THRESH);
        scr_detect.push(t.elapsed());
        assert_eq!(flags, scratch_flags);

        let t = Instant::now();
        tri.apply_delta(&d);
        let count = tri.count();
        inc_tri.push(t.elapsed());
        let t = Instant::now();
        let sym = symmetrize(&pattern_f64(&full), PlusTimes::<f64>::new());
        let scratch_count = triangles::triangle_count(&sym);
        scr_tri.push(t.elapsed());
        assert_eq!(count, scratch_count);
    }
    rec.set("delta_nnz", WAVE as f64);
    row(
        &mut rec,
        "detect",
        "incremental_detect_us",
        median(inc_detect),
        "scratch_detect_us",
        median(scr_detect),
    );
    row(
        &mut rec,
        "triangles",
        "incremental_tri_us",
        median(inc_tri),
        "scratch_tri_us",
        median(scr_tri),
    );

    // --- PageRank: warm restart from the prior epoch's vector. --------
    // Serving-grade tolerance: the point of the refresh is that a prior
    // one small delta away needs far fewer power iterations to re-enter
    // the tolerance ball than a cold uniform start.
    let opts = PageRankOpts {
        tol: 1e-6,
        ..PageRankOpts::default()
    };
    let base = chain_graph();
    let prior = pagerank(&pattern_f64(&base), opts);
    let delta = build(&wave(600, 10));
    let pat = pattern_f64(&hypersparse::ops::ewise_add(&base, &delta, s));
    let (cold_t, cold) = quick_time(5, || pagerank(&pat, opts));
    let (warm_t, warm) = quick_time(5, || pagerank_refresh(&pat, &prior, opts));
    let l1: f64 = cold.iter().zip(&warm).map(|(a, b)| (a - b).abs()).sum();
    assert!(l1 < 1e-3, "refresh diverged: L1 gap {l1}");
    row(
        &mut rec,
        "pagerank",
        "pagerank_refresh_us",
        warm_t,
        "pagerank_scratch_us",
        cold_t,
    );
    println!("✓ every incremental answer matched its from-scratch counterpart");
    rec
}

fn criterion_benches(c: &mut Criterion) {
    let s = S::new();
    let mut deg = DegreeState::new(N, N);
    let mut full = Dcsr::<u64>::empty(N, N);
    for w in 0..BASE_WAVES {
        let d = build(&wave(w as u64, BASE_EVENTS));
        deg.apply_delta(&d);
        full = hypersparse::ops::ewise_add(&full, &d, s);
    }
    let deltas: Vec<Dcsr<u64>> = (0..ITERS)
        .map(|i| build(&wave(300 + i as u64, WAVE)))
        .collect();

    let mut group = c.benchmark_group("incremental/detect");
    group.sample_size(20);
    group.bench_function("apply_delta", |b| {
        let mut k = 0usize;
        b.iter(|| {
            deg.apply_delta(&deltas[k % deltas.len()]);
            k += 1;
            deg.scan_suspects(THRESH)
        })
    });
    group.bench_function("scratch_rescan", |b| {
        b.iter(|| netsec::scan_suspects(&full, THRESH))
    });
    group.finish();
}

fn main() {
    let rec = shape_report();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incremental.json");
    match rec.write(path) {
        Ok(()) => println!("recorded medians → {path}"),
        Err(e) => println!("could not record {path}: {e}"),
    }
    let mut c = Criterion::default().configure_from_args();
    criterion_benches(&mut c);
    c.final_summary();
}
