//! **Fig. 1** — graph ↔ adjacency array duality.
//!
//! BFS performed "on a graph" (queue + adjacency lists) and "on an
//! adjacency array" (frontier `vᵀA` over the any-pair semiring) across
//! RMAT scales. The two sides must produce identical level sets; the
//! bench reports how the duality trades off in time as the graph grows.

use bench::{fmt_dur, quick_time};
use criterion::Criterion;
use graph::baseline::{bfs_queue, AdjList};
use graph::bfs::{bfs_levels, bfs_parents};
use graph::pattern::{pattern_u64, pattern_u8};
use hypersparse::gen::{rmat_dcsr, RmatParams};
use hypersparse::{Dcsr, Ix};
use semiring::PlusTimes;

fn rmat(scale: u32) -> Dcsr<f64> {
    rmat_dcsr(
        RmatParams {
            scale,
            edge_factor: 8,
            ..Default::default()
        },
        1,
        PlusTimes::<f64>::new(),
    )
}

fn shape_report() {
    println!("=== Fig. 1: BFS duality — array multiplication vs queue ===");
    println!("| scale | N      | nnz      | reached | array BFS  | queue BFS  |");
    for scale in [10u32, 12, 14, 16] {
        let g = rmat(scale);
        let pat = pattern_u8(&g);
        let adj = AdjList::from_pattern(&g);
        let (t_arr, lv_arr) = quick_time(3, || bfs_levels(&pat, 0));
        let (t_q, lv_q) = quick_time(3, || bfs_queue(&adj, 0));

        // Duality check: identical level sets.
        let mut want: Vec<(Ix, u32)> = lv_q
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l != u32::MAX)
            .map(|(v, &l)| (v as Ix, l))
            .collect();
        want.sort_by_key(|e| e.0);
        assert_eq!(lv_arr, want, "duality violated at scale {scale}");

        println!(
            "| {:>5} | {:>6} | {:>8} | {:>7} | {:>10} | {:>10} |",
            scale,
            g.nrows(),
            g.nnz(),
            lv_arr.len(),
            fmt_dur(t_arr),
            fmt_dur(t_q),
        );
    }
    println!("✓ identical BFS level sets on both sides of the duality at every scale");
}

fn criterion_benches(c: &mut Criterion) {
    for scale in [12u32, 14] {
        let g = rmat(scale);
        let pat8 = pattern_u8(&g);
        let pat64 = pattern_u64(&g);
        let adj = AdjList::from_pattern(&g);
        let mut group = c.benchmark_group(format!("fig1/scale{scale}"));
        group.sample_size(10);
        group.bench_function("array_bfs_levels", |b| b.iter(|| bfs_levels(&pat8, 0)));
        group.bench_function("array_bfs_parents", |b| b.iter(|| bfs_parents(&pat64, 0)));
        group.bench_function("queue_bfs", |b| b.iter(|| bfs_queue(&adj, 0)));
        group.finish();
    }
}

fn main() {
    shape_report();
    let mut c = Criterion::default().configure_from_args();
    criterion_benches(&mut c);
    c.final_summary();
}
