//! Ablation: direction-optimized vxm (DESIGN.md §Direction-optimized mxv).
//!
//! Three questions, on an RMAT power-law graph and a directed ring (the
//! adversarial case where every frontier is one vertex):
//!
//! 1. push vs pull vs the Beamer-style heuristic's pick, across frontier
//!    densities;
//! 2. fused complement-masked vxm vs unfused-then-filter on the
//!    BFS-shaped workload (mid-traversal frontier, visited mask);
//! 3. parallel vs sequential vxm at 4 threads on a ≥100k-edge input —
//!    bit-identical by construction, so the outputs are asserted equal.

use bench::{fmt_dur, quick_time};
use criterion::Criterion;
use hypersparse::gen::{ring_dcsr, rmat_dcsr, RmatParams};
use hypersparse::ops::mxv::{
    choose_direction, vxm_ctx, vxm_masked_opt_ctx, vxm_opt_ctx, vxm_pull_ctx, vxm_push_ctx,
};
use hypersparse::ops::transpose;
use hypersparse::{Dcsr, Ix, OpCtx, SparseVec};
use semiring::PlusTimes;

fn s() -> PlusTimes<f64> {
    PlusTimes::new()
}

fn rmat() -> Dcsr<f64> {
    rmat_dcsr(
        RmatParams {
            scale: 14,
            edge_factor: 8,
            ..Default::default()
        },
        7,
        s(),
    )
}

/// Unit-weight frontier of ~`k` vertices spread over the non-empty rows.
fn frontier_of(g: &Dcsr<f64>, k: usize) -> SparseVec<f64> {
    let rows = g.row_ids();
    let step = (rows.len() / k.max(1)).max(1);
    let picks: Vec<(Ix, f64)> = rows
        .iter()
        .step_by(step)
        .take(k)
        .map(|&r| (r, 1.0))
        .collect();
    SparseVec::from_entries(g.nrows(), picks, s())
}

/// Expand a BFS `depth` levels from the busiest vertex; returns the
/// frontier at that depth and the visited set behind it.
fn bfs_shape(
    ctx: &OpCtx,
    g: &Dcsr<f64>,
    gt: &Dcsr<f64>,
    depth: usize,
) -> (SparseVec<f64>, SparseVec<f64>) {
    let src = g
        .iter_rows()
        .max_by_key(|(_, cols, _)| cols.len())
        .map(|(r, _, _)| r)
        .unwrap_or(0);
    let mut visited = SparseVec::from_entries(g.nrows(), vec![(src, 1.0)], s());
    let mut frontier = visited.clone();
    for _ in 0..depth {
        let next = vxm_masked_opt_ctx(ctx, &frontier, g, Some(gt), visited.indices(), s());
        if next.is_empty() {
            break;
        }
        visited = visited.ewise_add(&next, s());
        frontier = next;
    }
    (frontier, visited)
}

fn direction_table(name: &str, g: &Dcsr<f64>, gt: &Dcsr<f64>) {
    let ctx = OpCtx::new();
    let n_rows = g.row_ids().len();
    for k in [16usize, (n_rows / 64).max(1), n_rows] {
        let f = frontier_of(g, k);
        let dir = choose_direction(&f, g, true);
        let (t_push, r_push) = quick_time(5, || vxm_push_ctx(&ctx, &f, g, s()));
        let (t_pull, r_pull) = quick_time(5, || vxm_pull_ctx(&ctx, &f, gt, s()));
        let (t_auto, _) = quick_time(5, || vxm_opt_ctx(&ctx, &f, g, Some(gt), s()));
        assert_eq!(
            r_push.indices(),
            r_pull.indices(),
            "push and pull disagree on the output pattern"
        );
        println!(
            "| {:<5} | {:>8} | {:>10} | {:>10} | {:>10} ({:>4}) |",
            name,
            f.nnz(),
            fmt_dur(t_push),
            fmt_dur(t_pull),
            fmt_dur(t_auto),
            dir.name(),
        );
    }
}

fn shape_report() {
    let g = rmat();
    let gt = transpose(&g);
    let ring = ring_dcsr(1 << 14, s());
    let ring_t = transpose(&ring);

    println!("=== Ablation: direction-optimized vxm ===");
    println!(
        "rmat scale 14 ×8 ({} edges), ring n=16384 ({} edges)",
        g.nnz(),
        ring.nnz()
    );
    println!("| graph | frontier | push       | pull       | auto (chosen)     |");
    direction_table("rmat", &g, &gt);
    direction_table("ring", &ring, &ring_t);

    // --- fused masked vs unfused-then-filter, BFS-shaped ---
    let ctx = OpCtx::new();
    let (frontier, visited) = bfs_shape(&ctx, &g, &gt, 2);
    let (t_fused, r_fused) = quick_time(5, || {
        vxm_masked_opt_ctx(&ctx, &frontier, &g, Some(&gt), visited.indices(), s())
    });
    let (t_unfused, r_unfused) = quick_time(5, || {
        vxm_opt_ctx(&ctx, &frontier, &g, Some(&gt), s()).without(&visited)
    });
    assert_eq!(r_fused, r_unfused, "mask fusion changed the result");
    println!(
        "masked vxm (frontier {}, visited {}): fused {} vs unfused-then-filter {} ({:.2}x)",
        frontier.nnz(),
        visited.nnz(),
        fmt_dur(t_fused),
        fmt_dur(t_unfused),
        t_unfused.as_secs_f64() / t_fused.as_secs_f64(),
    );

    // --- parallel vs sequential on the ≥100k-edge input ---
    let dense = frontier_of(&g, usize::MAX);
    let seq = OpCtx::new().with_threads(1);
    let par = OpCtx::new().with_threads(4);
    let (t_seq, r_seq) = quick_time(5, || vxm_ctx(&seq, &dense, &g, s()));
    let (t_par, r_par) = quick_time(5, || vxm_ctx(&par, &dense, &g, s()));
    assert_eq!(r_seq, r_par, "thread count changed the result");
    println!(
        "parallel vxm ({} edges, dense frontier): 1 thread {} vs 4 threads {} ({:.2}x)",
        g.nnz(),
        fmt_dur(t_seq),
        fmt_dur(t_par),
        t_seq.as_secs_f64() / t_par.as_secs_f64(),
    );
    println!("✓ push ≡ pull on pattern; fused ≡ unfused and seq ≡ par bit-for-bit");

    // --- tracing overhead on the hot kernel loop ---
    // Every vxm call opens a span; disabled mode must price that at one
    // relaxed atomic load (no clock read, no allocation).
    println!("--- tracing-mode ablation (dense-frontier vxm) ---");
    let mut base = 0.0f64;
    for (label, mode) in [
        ("disabled", hypersparse::TraceMode::Disabled),
        ("slow-only", hypersparse::TraceMode::SlowOnly),
        ("full", hypersparse::TraceMode::Full),
    ] {
        let ctx = OpCtx::new();
        ctx.trace().set_mode(mode);
        if mode == hypersparse::TraceMode::SlowOnly {
            ctx.trace()
                .set_slow_threshold(Some(std::time::Duration::from_millis(50)));
        }
        let (t, _) = quick_time(5, || {
            let r = vxm_ctx(&ctx, &dense, &g, s());
            ctx.trace().clear();
            r
        });
        let secs = t.as_secs_f64();
        if base == 0.0 {
            base = secs;
        }
        println!(
            "| {label:>10} | {:>10} | {:>6.3}x |",
            fmt_dur(t),
            secs / base
        );
    }

    // --- masked SpGEMM: parallel vs sequential on the triangle workload ---
    // L ⊕.⊗ L masked by L (the Sandia triangle kernel) over the lower
    // triangle of the symmetrized rmat graph — the hot path that
    // graph::triangles drives.
    let sym = hypersparse::ops::ewise_add(&g, &gt, s());
    let l = hypersparse::ops::select(&sym, |r, c, _| c < r);
    let seq1 = OpCtx::new().with_threads(1);
    let (t_mseq, r_mseq) = quick_time(3, || {
        hypersparse::ops::mxm_masked_ctx(&seq1, &l, &l, &l, false, s())
    });
    println!(
        "--- masked SpGEMM (triangle workload, {} edges in L) ---",
        l.nnz()
    );
    for threads in [2usize, 4, 8] {
        let par = OpCtx::new().with_threads(threads);
        let (t_mpar, r_mpar) = quick_time(3, || {
            hypersparse::ops::mxm_masked_ctx(&par, &l, &l, &l, false, s())
        });
        assert_eq!(r_mseq, r_mpar, "thread count changed the masked product");
        println!(
            "masked mxm 1 thread {} vs {} threads {} ({:.2}x)",
            fmt_dur(t_mseq),
            threads,
            fmt_dur(t_mpar),
            t_mseq.as_secs_f64() / t_mpar.as_secs_f64(),
        );
    }
    println!("✓ masked SpGEMM parallel ≡ sequential bit-for-bit");
}

fn criterion_benches(c: &mut Criterion) {
    let g = rmat();
    let gt = transpose(&g);
    let ctx = OpCtx::new();
    let sparse = frontier_of(&g, 16);
    let dense = frontier_of(&g, usize::MAX);
    let (frontier, visited) = bfs_shape(&ctx, &g, &gt, 2);

    let mut group = c.benchmark_group("ablation/mxv_direction");
    group.sample_size(10);
    group.bench_function("push_sparse_frontier", |b| {
        b.iter(|| vxm_push_ctx(&ctx, &sparse, &g, s()))
    });
    group.bench_function("pull_sparse_frontier", |b| {
        b.iter(|| vxm_pull_ctx(&ctx, &sparse, &gt, s()))
    });
    group.bench_function("push_dense_frontier", |b| {
        b.iter(|| vxm_push_ctx(&ctx, &dense, &g, s()))
    });
    group.bench_function("pull_dense_frontier", |b| {
        b.iter(|| vxm_pull_ctx(&ctx, &dense, &gt, s()))
    });
    group.bench_function("masked_fused", |b| {
        b.iter(|| vxm_masked_opt_ctx(&ctx, &frontier, &g, Some(&gt), visited.indices(), s()))
    });
    group.bench_function("masked_unfused_then_filter", |b| {
        b.iter(|| vxm_opt_ctx(&ctx, &frontier, &g, Some(&gt), s()).without(&visited))
    });
    group.finish();
}

fn main() {
    shape_report();
    let mut c = Criterion::default().configure_from_args();
    criterion_benches(&mut c);
    c.final_summary();
}
