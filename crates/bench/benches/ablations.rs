//! Ablations of the engine's design choices (DESIGN.md §3):
//!
//! * **formats** — forcing CSR vs DCSR vs trusting the automatic policy
//!   on workloads from each Fig. 4 regime (auto should track the better
//!   hand-picked format);
//! * **parallel** — row-sharded SpGEMM vs the sequential kernel;
//! * **accumulator** — hash-map vs dense-scratch Gustavson accumulators
//!   across column-space sizes (the `mxm` heuristic's crossover).

use bench::{fmt_dur, quick_time};
use criterion::Criterion;
use hypersparse::gen::{random_dcsr, rmat_dcsr, RmatParams};
use hypersparse::ops::mxm::{multiply_rows_dense_acc, multiply_rows_hash_acc};
use hypersparse::{Format, Matrix, SparseVec};
use semiring::PlusTimes;

fn s() -> PlusTimes<f64> {
    PlusTimes::new()
}

fn shape_report() {
    println!("=== Ablation 1: storage format choice per regime (SpMV) ===");
    println!("| regime       | forced CSR | forced DCSR | auto       | auto picked |");
    let n = 1u64 << 16;
    for &(label, nnz) in &[
        ("hypersparse", 2_000usize),
        ("sparse", 65_000),
        ("denser", 500_000),
    ] {
        let auto = Matrix::from_dcsr(random_dcsr(n, n, nnz, 1, s()), s());
        let v = SparseVec::from_entries(n, (0..256).map(|i| (i * 131 % n, 1.0)).collect(), s());
        let csr = auto.clone().with_format(Format::Csr, s());
        let dcsr = auto.clone().with_format(Format::Dcsr, s());
        let (t_csr, _) = quick_time(5, || csr.mxv(&v, s()));
        let (t_dcsr, _) = quick_time(5, || dcsr.mxv(&v, s()));
        let (t_auto, _) = quick_time(5, || auto.mxv(&v, s()));
        println!(
            "| {:<12} | {:>10} | {:>11} | {:>10} | {:?} |",
            label,
            fmt_dur(t_csr),
            fmt_dur(t_dcsr),
            fmt_dur(t_auto),
            auto.format(),
        );
    }

    println!("\n=== Ablation 2: parallel vs sequential SpGEMM (RMAT A·A) ===");
    println!("| scale | nnz      | sequential | parallel   | speedup |");
    for scale in [12u32, 14] {
        let g = rmat_dcsr(
            RmatParams {
                scale,
                edge_factor: 8,
                ..Default::default()
            },
            1,
            s(),
        );
        let (t_seq, c_seq) = quick_time(3, || hypersparse::ops::mxm_seq(&g, &g, s()));
        let (t_par, c_par) = quick_time(3, || hypersparse::ops::mxm(&g, &g, s()));
        assert_eq!(c_seq, c_par, "parallel result differs at scale {scale}");
        println!(
            "| {:>5} | {:>8} | {:>10} | {:>10} | {:>6.2}x |",
            scale,
            g.nnz(),
            fmt_dur(t_seq),
            fmt_dur(t_par),
            t_seq.as_secs_f64() / t_par.as_secs_f64(),
        );
    }
    println!("✓ parallel ≡ sequential bit-for-bit (deterministic row sharding)");

    println!("\n=== Ablation 3: Gustavson accumulator (hash vs dense scratch) ===");
    println!("| ncols    | hash acc   | dense acc  |");
    for &logc in &[10u32, 14, 18, 22] {
        let ncols = 1u64 << logc;
        let a = random_dcsr(4096, 4096, 40_000, 2, s());
        let b = random_dcsr(4096, ncols, 40_000, 3, s());
        let rows = a.n_nonempty_rows();
        let (t_hash, rh) = quick_time(3, || multiply_rows_hash_acc(&a, &b, s(), 0, rows));
        let (t_dense, rd) = quick_time(3, || multiply_rows_dense_acc(&a, &b, s(), 0, rows));
        assert_eq!(rh, rd);
        println!(
            "| 2^{:<6} | {:>10} | {:>10} |",
            logc,
            fmt_dur(t_hash),
            fmt_dur(t_dense),
        );
    }
    println!("✓ accumulators agree; dense scratch wins in compact column spaces");

    println!("\n=== Ablation 4: streaming inserts (hierarchical vs rebuild-per-batch) ===");
    println!("| events   | hierarchical | rebuild/1k batch | speedup |");
    use hypersparse::StreamingMatrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let n = 1u64 << 40;
    for &events in &[50_000usize, 200_000] {
        let mut rng = StdRng::seed_from_u64(9);
        let stream_events: Vec<(u64, u64, f64)> = (0..events)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n), 1.0))
            .collect();

        let (t_stream, snap) = quick_time(3, || {
            let mut m = StreamingMatrix::new(n, n, s());
            for &(r, c, v) in &stream_events {
                m.insert(r, c, v);
            }
            m.snapshot()
        });

        // Baseline: maintain one flat matrix, ⊕-merging a fresh 1k-event
        // batch into it each time (the naive "update the big matrix"
        // pattern the hierarchical design replaces).
        let (t_rebuild, flat) = quick_time(1, || {
            let mut acc = hypersparse::Dcsr::<f64>::empty(n, n);
            for chunk in stream_events.chunks(1000) {
                let mut coo = hypersparse::Coo::new(n, n);
                coo.extend(chunk.iter().copied());
                acc = hypersparse::ops::ewise_add(&acc, &coo.build_dcsr(s()), s());
            }
            acc
        });
        assert_eq!(snap, flat, "streaming snapshot must equal flat result");
        println!(
            "| {:>8} | {:>12} | {:>16} | {:>6.1}x |",
            events,
            fmt_dur(t_stream),
            fmt_dur(t_rebuild),
            t_rebuild.as_secs_f64() / t_stream.as_secs_f64(),
        );
    }
    println!("✓ hierarchical ⊕-merge hierarchy ≡ flat build (the cited 75B-inserts/s design)");
}

fn criterion_benches(c: &mut Criterion) {
    let g = rmat_dcsr(
        RmatParams {
            scale: 12,
            edge_factor: 8,
            ..Default::default()
        },
        1,
        s(),
    );
    let mut group = c.benchmark_group("ablation/spgemm_scale12");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| hypersparse::ops::mxm_seq(&g, &g, s()))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| hypersparse::ops::mxm(&g, &g, s()))
    });
    group.finish();
}

fn main() {
    shape_report();
    let mut c = Criterion::default().configure_from_args();
    criterion_benches(&mut c);
    c.final_summary();
}
