//! Shared helpers for the table/figure benchmark harness.
//!
//! Each bench target has two halves:
//!
//! 1. a **shape report** printed before Criterion runs — the rows/series
//!    the paper's table or figure shows, regenerated from this
//!    implementation (recorded in `EXPERIMENTS.md`);
//! 2. Criterion measurements of the competing formulations.
//!
//! [`quick_time`] drives the shape reports: median of a few warm
//! iterations, good enough for "who wins and by roughly what factor"
//! without Criterion's full statistics.

pub mod gate;
pub mod record;

pub use record::BenchRecord;

use std::time::{Duration, Instant};

/// Median wall time of `iters` runs of `f` (after one warmup run).
/// The closure's result is returned from the last run so the work
/// cannot be optimized away.
pub fn quick_time<T>(iters: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut out = f(); // warmup
    let mut times: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters.max(1) {
        let t = Instant::now();
        out = f();
        times.push(t.elapsed());
    }
    times.sort();
    (times[times.len() / 2], out)
}

/// Pretty-print a duration in adaptive units.
pub fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Pretty-print bytes in adaptive units.
pub fn fmt_bytes(b: usize) -> String {
    if b < 4 << 10 {
        format!("{b} B")
    } else if b < 4 << 20 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else if b < (4usize << 30) {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else {
        format!("{:.2} GiB", b as f64 / (1 << 30) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_time_returns_result() {
        let (d, v) = quick_time(3, || (0..1000u64).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn formatters() {
        assert!(fmt_dur(Duration::from_nanos(500)).contains("ns"));
        assert!(fmt_dur(Duration::from_micros(500)).contains("µs"));
        assert!(fmt_dur(Duration::from_millis(500)).contains("ms"));
        assert!(fmt_dur(Duration::from_secs(500)).contains(" s"));
        assert_eq!(fmt_bytes(100), "100 B");
        assert!(fmt_bytes(100 << 10).contains("KiB"));
        assert!(fmt_bytes(100 << 20).contains("MiB"));
    }
}
