//! CI entry point for the perf-regression gate.
//!
//! Single-record mode:
//!
//! ```text
//! cargo run -p bench --bin perf_gate -- <baseline.json> <current.json> [tolerance]
//! ```
//!
//! Sweep mode — gate **every** `BENCH_*.json` present in a baseline
//! directory against its same-named regeneration in a current
//! directory:
//!
//! ```text
//! cargo run -p bench --bin perf_gate -- --all <baseline_dir> <current_dir> [tolerance]
//! ```
//!
//! Exits 0 when every pinned median in every baseline is matched by the
//! current run within `tolerance` (default 10%), 1 otherwise. A
//! baseline record with no regenerated counterpart fails the sweep —
//! silently dropping a tracked bench is itself a regression. Only
//! lower-is-better time metrics are pinned (see [`bench::gate`]);
//! throughput/count metrics ride along informationally.

use std::path::Path;

use bench::gate::{compare, DEFAULT_TOLERANCE};
use bench::BenchRecord;

fn parse_tolerance(arg: Option<&String>) -> Result<f64, String> {
    match arg {
        Some(t) => t
            .parse::<f64>()
            .map_err(|e| format!("bad tolerance {t:?}: {e}")),
        None => Ok(DEFAULT_TOLERANCE),
    }
}

/// Gate one baseline record against one current record. Returns true on
/// failure.
fn gate_pair(baseline_path: &str, current_path: &str, tolerance: f64) -> Result<bool, String> {
    let baseline = BenchRecord::read(baseline_path).map_err(|e| e.to_string())?;
    let current = BenchRecord::read(current_path).map_err(|e| e.to_string())?;
    let report = compare(&baseline, &current, tolerance);
    print!("{}", report.render());
    if report.failed() {
        eprintln!(
            "perf gate FAILED for {baseline_path}: {} metric(s) regressed past {:.0}% or went missing",
            report.failures().count(),
            tolerance * 100.0
        );
    }
    Ok(report.failed())
}

/// Sweep every `BENCH_*.json` in `baseline_dir` against `current_dir`.
/// Returns true on any failure.
fn gate_all(baseline_dir: &str, current_dir: &str, tolerance: f64) -> Result<bool, String> {
    let mut baselines: Vec<String> = std::fs::read_dir(baseline_dir)
        .map_err(|e| format!("cannot read baseline dir {baseline_dir}: {e}"))?
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            (name.starts_with("BENCH_") && name.ends_with(".json")).then_some(name)
        })
        .collect();
    baselines.sort();
    if baselines.is_empty() {
        return Err(format!("no BENCH_*.json records in {baseline_dir}"));
    }
    let mut failed = false;
    for name in &baselines {
        let base = Path::new(baseline_dir).join(name);
        let cur = Path::new(current_dir).join(name);
        println!("=== {name} ===");
        if !cur.is_file() {
            eprintln!(
                "perf gate FAILED for {name}: baseline pinned but no regenerated record at {}",
                cur.display()
            );
            failed = true;
            continue;
        }
        failed |= gate_pair(
            &base.display().to_string(),
            &cur.display().to_string(),
            tolerance,
        )?;
    }
    println!(
        "perf gate sweep: {} record(s) checked from {baseline_dir}",
        baselines.len()
    );
    Ok(failed)
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().collect();
    let usage = || {
        format!(
            "usage: {0} <baseline.json> <current.json> [tolerance]\n   or: {0} --all <baseline_dir> <current_dir> [tolerance]",
            args.first().map(String::as_str).unwrap_or("perf_gate")
        )
    };
    if args.get(1).map(String::as_str) == Some("--all") {
        let (baseline_dir, current_dir) = match (args.get(2), args.get(3)) {
            (Some(b), Some(c)) => (b, c),
            _ => return Err(usage()),
        };
        let tolerance = parse_tolerance(args.get(4))?;
        let failed = gate_all(baseline_dir, current_dir, tolerance)?;
        if !failed {
            println!("perf gate passed");
        }
        return Ok(failed);
    }
    let (baseline_path, current_path) = match (args.get(1), args.get(2)) {
        (Some(b), Some(c)) => (b, c),
        _ => return Err(usage()),
    };
    let tolerance = parse_tolerance(args.get(3))?;
    let failed = gate_pair(baseline_path, current_path, tolerance)?;
    if !failed {
        println!("perf gate passed");
    }
    Ok(failed)
}

fn main() {
    match run() {
        Ok(false) => {}
        Ok(true) => std::process::exit(1),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}
