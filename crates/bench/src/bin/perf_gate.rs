//! CI entry point for the perf-regression gate.
//!
//! ```text
//! cargo run -p bench --bin perf_gate -- <baseline.json> <current.json> [tolerance]
//! ```
//!
//! Exits 0 when every pinned median in the baseline is matched by the
//! current run within `tolerance` (default 10%), 1 otherwise — wired
//! after `kernel_hotpaths` regenerates `BENCH_kernels.json` so a >10%
//! median regression fails the build.

use bench::gate::{compare, DEFAULT_TOLERANCE};
use bench::BenchRecord;

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().collect();
    let (baseline_path, current_path) = match (args.get(1), args.get(2)) {
        (Some(b), Some(c)) => (b, c),
        _ => {
            return Err(format!(
                "usage: {} <baseline.json> <current.json> [tolerance]",
                args.first().map(String::as_str).unwrap_or("perf_gate")
            ))
        }
    };
    let tolerance = match args.get(3) {
        Some(t) => t
            .parse::<f64>()
            .map_err(|e| format!("bad tolerance {t:?}: {e}"))?,
        None => DEFAULT_TOLERANCE,
    };
    let baseline = BenchRecord::read(baseline_path).map_err(|e| e.to_string())?;
    let current = BenchRecord::read(current_path).map_err(|e| e.to_string())?;
    let report = compare(&baseline, &current, tolerance);
    print!("{}", report.render());
    if report.failed() {
        eprintln!(
            "perf gate FAILED: {} metric(s) regressed past {:.0}% or went missing",
            report.failures().count(),
            tolerance * 100.0
        );
    } else {
        println!("perf gate passed");
    }
    Ok(report.failed())
}

fn main() {
    match run() {
        Ok(false) => {}
        Ok(true) => std::process::exit(1),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}
