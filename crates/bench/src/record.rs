//! Tiny machine-readable bench recording: `BENCH_*.json` files at the
//! repo root, one per tracked benchmark, holding the latest run's
//! medians so successive PRs can diff the perf trajectory.
//!
//! The format is deliberately minimal and deterministic — flat
//! `metric → number` pairs, sorted by key, no timestamps — so the file
//! diff *is* the trajectory and reruns with identical numbers are
//! byte-identical. Written by hand (the workspace is offline; no serde).

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// One benchmark's recorded medians.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchRecord {
    bench: String,
    metrics: BTreeMap<String, f64>,
}

impl BenchRecord {
    /// A record for the named benchmark.
    pub fn new(bench: &str) -> Self {
        BenchRecord {
            bench: bench.to_string(),
            metrics: BTreeMap::new(),
        }
    }

    /// Set one metric (overwrites on repeated keys). Non-finite values
    /// are recorded as `0` — JSON has no NaN and a parseable trajectory
    /// beats a truthful corrupt file.
    pub fn set(&mut self, key: &str, value: f64) -> &mut Self {
        let v = if value.is_finite() { value } else { 0.0 };
        self.metrics.insert(key.to_string(), v);
        self
    }

    /// Parse a record back from the JSON [`Self::to_json`] writes. Only
    /// that shape is understood (one `"key": value` pair per line) —
    /// this reads our own artifacts, not arbitrary JSON. `None` when no
    /// `"bench"` name is present.
    pub fn parse(text: &str) -> Option<Self> {
        let mut bench = None;
        let mut metrics = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim().trim_end_matches(',');
            let Some((k, v)) = line.split_once(':') else {
                continue;
            };
            let Some(k) = k.trim().strip_prefix('"').and_then(|k| k.strip_suffix('"')) else {
                continue;
            };
            let v = v.trim();
            if k == "bench" {
                bench = Some(v.trim_matches('"').to_string());
            } else if let Ok(x) = v.parse::<f64>() {
                metrics.insert(k.to_string(), x);
            }
        }
        Some(BenchRecord {
            bench: bench?,
            metrics,
        })
    }

    /// Read and parse a `BENCH_*.json` file.
    pub fn read(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = std::fs::read_to_string(&path)?;
        Self::parse(&text).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: not a BenchRecord", path.as_ref().display()),
            )
        })
    }

    /// The benchmark name this record belongs to.
    pub fn bench(&self) -> &str {
        &self.bench
    }

    /// Look up one recorded metric.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.metrics.get(key).copied()
    }

    /// All metrics, sorted by key.
    pub fn metrics(&self) -> impl Iterator<Item = (&str, f64)> {
        self.metrics.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Recorded metric count.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The JSON body: keys sorted, one metric per line.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"{}\",", self.bench);
        let _ = writeln!(out, "  \"metrics\": {{");
        let last = self.metrics.len().saturating_sub(1);
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            let comma = if i == last { "" } else { "," };
            // {v:?} keeps a trailing ".0" on integral floats, so the
            // file round-trips as float everywhere.
            let _ = writeln!(out, "    \"{k}\": {v:?}{comma}");
        }
        let _ = writeln!(out, "  }}");
        out.push_str("}\n");
        out
    }

    /// Write the JSON to `path` (atomic enough for a bench artifact:
    /// single `write` syscall of a small buffer).
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_sorted_and_deterministic() {
        let mut r = BenchRecord::new("serving_throughput");
        r.set("z_last", 2.5).set("a_first", 1.0).set("m_mid", 3.0);
        let json = r.to_json();
        let a = json.find("a_first").unwrap();
        let m = json.find("m_mid").unwrap();
        let z = json.find("z_last").unwrap();
        assert!(a < m && m < z, "keys must be sorted:\n{json}");
        assert!(json.contains("\"a_first\": 1.0"));
        assert!(json.contains("\"bench\": \"serving_throughput\""));
        assert_eq!(json, r.clone().to_json());
        // Last metric line has no trailing comma.
        assert!(json.contains("\"z_last\": 2.5\n"));
    }

    #[test]
    fn overwrites_and_sanitizes() {
        let mut r = BenchRecord::new("x");
        r.set("k", 1.0).set("k", 2.0).set("bad", f64::NAN);
        assert_eq!(r.len(), 2);
        assert!(r.to_json().contains("\"k\": 2.0"));
        assert!(r.to_json().contains("\"bad\": 0.0"));
    }

    #[test]
    fn parse_round_trips() {
        let mut r = BenchRecord::new("kernel_hotpaths");
        r.set("mxm_u64_ns", 123456.0).set("vxm_mono_ns", 42.5);
        let back = BenchRecord::parse(&r.to_json()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.bench(), "kernel_hotpaths");
        assert_eq!(back.get("vxm_mono_ns"), Some(42.5));
        assert_eq!(back.get("absent"), None);
        assert_eq!(back.metrics().count(), 2);
        assert!(BenchRecord::parse("{}").is_none(), "no bench name");
    }

    #[test]
    fn writes_to_disk() {
        let dir = std::env::temp_dir().join("bench_record_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let mut r = BenchRecord::new("t");
        r.set("q", 9.0);
        r.write(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), r.to_json());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
