//! CI perf-regression gate over `BENCH_*.json` medians.
//!
//! [`compare`] diffs a committed baseline record against a fresh run:
//! every baseline metric is a pinned median in nanoseconds (or another
//! lower-is-better unit), and a current value more than `tolerance`
//! above its baseline is a regression. A baseline metric the new run
//! did not produce also fails — silently dropping a tracked kernel is
//! exactly the kind of "regression" a trajectory gate exists to catch.
//! Metrics only the current run has are reported informationally and
//! pass (that is how new kernels enter the baseline).
//!
//! Records may also carry **informational** metrics — throughputs,
//! counts, ratios — where higher is better or noise is unbounded.
//! Those are distinguished by key convention ([`is_gated_key`]): only
//! time-suffixed keys (`*_ns`, `*_us`, `*_ms`, and `*_ns_per_*` /
//! `*_us_per_*` rates) are pinned; everything else is reported but
//! never fails. That lets one gate run over *every* `BENCH_*.json` in
//! the repo, mixed-metric records included.
//!
//! The gate is driven by the `perf_gate` binary
//! (`cargo run -p bench --bin perf_gate -- <baseline> <current> [tol]`,
//! or `-- --all <baseline_dir> <current_dir> [tol]` to sweep every
//! baseline record present), which CI wires after rerunning the
//! recorded benches.

use crate::BenchRecord;

/// Default headroom before a slower median fails the gate: 10%.
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// Whether a metric key is pinned by the gate. Pinned keys are
/// lower-is-better times, recognized by unit suffix: `_ns`/`_us`/`_ms`,
/// or a `_ns_per_`/`_us_per_` rate (e.g. `ingest_ns_per_event`).
/// Everything else (`*_qps`, `*_per_sec`, counts) is informational.
pub fn is_gated_key(key: &str) -> bool {
    key.ends_with("_ns")
        || key.ends_with("_us")
        || key.ends_with("_ms")
        || key.contains("_ns_per_")
        || key.contains("_us_per_")
}

/// Outcome for one metric key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance (or faster) — fine.
    Pass,
    /// Slower than `baseline × (1 + tolerance)`.
    Regressed,
    /// Pinned in the baseline but absent from the current run.
    Missing,
    /// New in the current run; informational, never fails.
    New,
    /// Not a gated key ([`is_gated_key`]); reported, never fails.
    Info,
}

/// One metric's comparison row.
#[derive(Clone, Debug)]
pub struct MetricCheck {
    pub key: String,
    pub baseline: Option<f64>,
    pub current: Option<f64>,
    pub verdict: Verdict,
}

impl MetricCheck {
    /// `current / baseline` when both sides exist and the baseline is
    /// positive (1.0 = unchanged, 1.25 = 25% slower).
    pub fn ratio(&self) -> Option<f64> {
        match (self.baseline, self.current) {
            (Some(b), Some(c)) if b > 0.0 => Some(c / b),
            _ => None,
        }
    }
}

/// The full gate comparison: one row per metric key, sorted.
#[derive(Clone, Debug)]
pub struct GateReport {
    pub tolerance: f64,
    pub checks: Vec<MetricCheck>,
}

impl GateReport {
    /// True when any pinned metric regressed or went missing.
    pub fn failed(&self) -> bool {
        self.checks
            .iter()
            .any(|c| matches!(c.verdict, Verdict::Regressed | Verdict::Missing))
    }

    /// The failing rows.
    pub fn failures(&self) -> impl Iterator<Item = &MetricCheck> {
        self.checks
            .iter()
            .filter(|c| matches!(c.verdict, Verdict::Regressed | Verdict::Missing))
    }

    /// Human-readable table for CI logs.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf gate (tolerance {:.0}%): {} metrics",
            self.tolerance * 100.0,
            self.checks.len()
        );
        for c in &self.checks {
            let ratio = c
                .ratio()
                .map(|r| format!("{:>6.2}x", r))
                .unwrap_or_else(|| "     -".into());
            let (mark, note) = match c.verdict {
                Verdict::Pass => ("ok  ", ""),
                Verdict::Regressed => ("FAIL", " regression"),
                Verdict::Missing => ("FAIL", " missing from current run"),
                Verdict::New => ("new ", ""),
                Verdict::Info => ("info", " (not gated)"),
            };
            let _ = writeln!(
                out,
                "  {mark} {:<34} base {:>12}  now {:>12}  {ratio}{note}",
                c.key,
                c.baseline.map(|v| format!("{v:.0}")).unwrap_or_default(),
                c.current.map(|v| format!("{v:.0}")).unwrap_or_default(),
            );
        }
        out
    }
}

/// Compare a fresh run against the pinned baseline. Gated metrics
/// ([`is_gated_key`]) are lower-is-better medians; `tolerance` is the
/// fractional slowdown allowed before one fails (0.10 ⇒ >10% slower
/// fails). Non-gated baseline metrics are carried through as
/// informational rows.
pub fn compare(baseline: &BenchRecord, current: &BenchRecord, tolerance: f64) -> GateReport {
    let mut checks = Vec::new();
    for (key, base) in baseline.metrics() {
        let (current, verdict) = match current.get(key) {
            _ if !is_gated_key(key) => (current.get(key), Verdict::Info),
            Some(now) if base > 0.0 && now > base * (1.0 + tolerance) => {
                (Some(now), Verdict::Regressed)
            }
            Some(now) => (Some(now), Verdict::Pass),
            None => (None, Verdict::Missing),
        };
        checks.push(MetricCheck {
            key: key.to_string(),
            baseline: Some(base),
            current,
            verdict,
        });
    }
    for (key, now) in current.metrics() {
        if baseline.get(key).is_none() {
            checks.push(MetricCheck {
                key: key.to_string(),
                baseline: None,
                current: Some(now),
                verdict: Verdict::New,
            });
        }
    }
    checks.sort_by(|a, b| a.key.cmp(&b.key));
    GateReport { tolerance, checks }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pairs: &[(&str, f64)]) -> BenchRecord {
        let mut r = BenchRecord::new("kernel_hotpaths");
        for &(k, v) in pairs {
            r.set(k, v);
        }
        r
    }

    #[test]
    fn injected_slowdown_over_tolerance_fails() {
        // The acceptance-criterion case: a 20% slowdown on a pinned
        // median must fail the 10% gate.
        let base = rec(&[("mxm_u32_ns", 1000.0), ("vxm_mono_ns", 500.0)]);
        let slow = rec(&[("mxm_u32_ns", 1200.0), ("vxm_mono_ns", 500.0)]);
        let report = compare(&base, &slow, DEFAULT_TOLERANCE);
        assert!(report.failed());
        let fails: Vec<_> = report.failures().map(|c| c.key.as_str()).collect();
        assert_eq!(fails, vec!["mxm_u32_ns"]);
        assert_eq!(report.checks[0].verdict, Verdict::Regressed);
        assert!((report.checks[0].ratio().unwrap() - 1.2).abs() < 1e-12);
        assert!(report.render().contains("FAIL mxm_u32_ns"));
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        let base = rec(&[("mxm_u32_ns", 1000.0)]);
        let close = rec(&[("mxm_u32_ns", 1050.0)]);
        assert!(!compare(&base, &close, DEFAULT_TOLERANCE).failed());
        // Exactly at the boundary is still within tolerance.
        let edge = rec(&[("mxm_u32_ns", 1100.0)]);
        assert!(!compare(&base, &edge, DEFAULT_TOLERANCE).failed());
    }

    #[test]
    fn improvements_and_new_metrics_pass() {
        let base = rec(&[("mxm_u32_ns", 1000.0)]);
        let now = rec(&[("mxm_u32_ns", 400.0), ("ewise_word_ns", 77.0)]);
        let report = compare(&base, &now, DEFAULT_TOLERANCE);
        assert!(!report.failed());
        let new = report
            .checks
            .iter()
            .find(|c| c.key == "ewise_word_ns")
            .unwrap();
        assert_eq!(new.verdict, Verdict::New);
    }

    #[test]
    fn throughput_metrics_are_informational_not_gated() {
        // A qps drop (or rise) must never fail the gate — only
        // time-suffixed keys are pinned. This is what makes sweeping
        // every BENCH_*.json safe for mixed-metric records.
        let base = rec(&[
            ("readers_8_qps", 150_000.0),
            ("epochs_published_8r", 23.0),
            ("p99_sql_us", 65.5),
        ]);
        let now = rec(&[("readers_8_qps", 50_000.0), ("p99_sql_us", 60.0)]);
        let report = compare(&base, &now, DEFAULT_TOLERANCE);
        assert!(!report.failed(), "{}", report.render());
        let qps = report
            .checks
            .iter()
            .find(|c| c.key == "readers_8_qps")
            .unwrap();
        assert_eq!(qps.verdict, Verdict::Info);
        // Even a *missing* informational metric passes.
        let epochs = report
            .checks
            .iter()
            .find(|c| c.key == "epochs_published_8r")
            .unwrap();
        assert_eq!(epochs.verdict, Verdict::Info);
        assert!(epochs.current.is_none());
        // But the latency key is still pinned.
        let slow = rec(&[("readers_8_qps", 150_000.0), ("p99_sql_us", 100.0)]);
        assert!(compare(&base, &slow, DEFAULT_TOLERANCE).failed());
    }

    #[test]
    fn gated_key_convention() {
        for k in [
            "mxm_u32_ns",
            "p99_sql_us",
            "close_ms",
            "ingest_ns_per_event",
        ] {
            assert!(is_gated_key(k), "{k} should be gated");
        }
        for k in [
            "readers_8_qps",
            "writer_events_per_sec",
            "epochs_published_8r",
            "hit_ratio",
        ] {
            assert!(!is_gated_key(k), "{k} should be informational");
        }
    }

    #[test]
    fn dropped_pinned_metric_fails() {
        let base = rec(&[("mxm_u32_ns", 1000.0), ("vxm_mono_ns", 500.0)]);
        let now = rec(&[("mxm_u32_ns", 1000.0)]);
        let report = compare(&base, &now, DEFAULT_TOLERANCE);
        assert!(report.failed());
        assert_eq!(report.failures().count(), 1);
        assert_eq!(report.failures().next().unwrap().verdict, Verdict::Missing);
    }
}
