//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so this shim reimplements
//! the slice of proptest this workspace's suites use: the [`proptest!`]
//! macro, range/tuple/`Just`/`prop_oneof!` strategies, `collection::vec`
//! and `collection::btree_set`, a character-class subset of
//! `string::string_regex`, `prop_map`/`prop_filter` combinators, and the
//! `prop_assert*` family.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the generated inputs
//!   (via `Debug` in the panic payload) but is not minimized.
//! * **Deterministic seeding.** Each `proptest!` test derives its RNG
//!   seed from the test's name, so failures reproduce exactly.
//! * `string_regex` supports literals, `[...]` classes (with ranges),
//!   and `{m}`/`{m,n}`/`?`/`*`/`+` quantifiers — enough for key
//!   alphabets, not a general regex engine.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::Range;

use rand::rngs::StdRng;
#[doc(hidden)]
pub use rand::SeedableRng;
use rand::{Rng, SampleRange, StandardSample};

/// Number of random cases a `proptest!` test runs by default.
pub const DEFAULT_CASES: u32 = 48;

/// Maximum consecutive `prop_filter` rejections before a strategy gives
/// up (mirrors proptest's "too many local rejects").
const MAX_FILTER_RETRIES: u32 = 1000;

/// Per-test configuration, set via `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The generator handed to strategies (a seeded [`StdRng`]).
pub type TestRng = StdRng;

/// A recipe for producing random values of `Value`.
///
/// Unlike real proptest there is no value tree: `generate` directly
/// yields a sample, and combinators compose these samplers.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`; `reason` names the filter in
    /// the give-up panic.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Generate a value, then run a strategy derived from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Uniformly permute the generated collection (Fisher–Yates).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { inner: self }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng: &mut TestRng| {
            self.generate(rng)
        }))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected {MAX_FILTER_RETRIES} consecutive samples",
            self.reason
        );
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy (what `prop_oneof!` arms collapse to).
#[derive(Clone)]
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Fn(&mut TestRng) -> T>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Collections [`Strategy::prop_shuffle`] can permute in place.
pub trait Shuffleable: Debug {
    /// Permute the collection uniformly at random.
    fn shuffle(&mut self, rng: &mut TestRng);
}

impl<T: Debug> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut TestRng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Clone, Debug)]
pub struct Shuffle<S> {
    inner: S,
}

impl<S: Strategy> Strategy for Shuffle<S>
where
    S::Value: Shuffleable,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut v = self.inner.generate(rng);
        v.shuffle(rng);
        v
    }
}

/// Strategy producing exactly `0`'s clone every time.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-domain strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                <$t as StandardSample>::standard_sample(rng)
            }
        }
    )*};
}
arbitrary_via_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

/// Ranges are strategies (uniform over the half-open interval).
impl<T> Strategy for Range<T>
where
    T: Debug + Clone,
    Range<T>: SampleRange<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Lengths a collection strategy may produce.
    #[derive(Clone, Debug)]
    pub struct SizeRange(pub Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    /// `Vec<T>` with a length drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = sample_size(rng, &self.size);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet<T>`; the set may be smaller than the drawn length when
    /// elements collide (matches proptest's behaviour).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = sample_size(rng, &self.size);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    fn sample_size(rng: &mut TestRng, size: &SizeRange) -> usize {
        if size.0.is_empty() {
            size.0.start
        } else {
            rng.gen_range(size.0.clone())
        }
    }
}

/// String strategies (`string_regex` subset).
pub mod string {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Error from [`string_regex`] on an unsupported pattern.
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "unsupported regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// One parsed regex atom with its repetition bounds.
    #[derive(Debug, Clone)]
    struct Piece {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Strings matching a small regex subset: literals, `[...]` classes
    /// with `a-z` ranges, and `{m}`/`{m,n}`/`?`/`*`/`+` quantifiers.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        let mut pieces = Vec::new();
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let choices = match chars[i] {
                '[' => {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == ']')
                        .ok_or_else(|| Error(pattern.into()))?
                        + i
                        + 1;
                    let inner = &chars[i + 1..close];
                    i = close + 1;
                    expand_class(inner)
                }
                '\\' => {
                    i += 2;
                    vec![*chars.get(i - 1).ok_or_else(|| Error(pattern.into()))?]
                }
                '(' | ')' | '|' | '.' | '^' | '$' => return Err(Error(pattern.into())),
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = parse_quantifier(&chars, &mut i, pattern)?;
            pieces.push(Piece { choices, min, max });
        }
        Ok(RegexStrategy { pieces })
    }

    fn expand_class(inner: &[char]) -> Vec<char> {
        let mut out = Vec::new();
        let mut k = 0usize;
        while k < inner.len() {
            if k + 2 < inner.len() && inner[k + 1] == '-' {
                for c in inner[k]..=inner[k + 2] {
                    out.push(c);
                }
                k += 3;
            } else {
                out.push(inner[k]);
                k += 1;
            }
        }
        out
    }

    fn parse_quantifier(
        chars: &[char],
        i: &mut usize,
        pattern: &str,
    ) -> Result<(usize, usize), Error> {
        match chars.get(*i) {
            Some('{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|&c| c == '}')
                    .ok_or_else(|| Error(pattern.into()))?
                    + *i;
                let body: String = chars[*i + 1..close].iter().collect();
                *i = close + 1;
                let parts: Vec<&str> = body.split(',').collect();
                let min = parts[0].trim().parse().map_err(|_| Error(pattern.into()))?;
                let max = if parts.len() > 1 {
                    parts[1].trim().parse().map_err(|_| Error(pattern.into()))?
                } else {
                    min
                };
                Ok((min, max))
            }
            Some('?') => {
                *i += 1;
                Ok((0, 1))
            }
            Some('*') => {
                *i += 1;
                Ok((0, 8))
            }
            Some('+') => {
                *i += 1;
                Ok((1, 8))
            }
            _ => Ok((1, 1)),
        }
    }

    /// See [`string_regex`].
    #[derive(Debug, Clone)]
    pub struct RegexStrategy {
        pieces: Vec<Piece>,
    }

    impl Strategy for RegexStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in &self.pieces {
                let n = if piece.min == piece.max {
                    piece.min
                } else {
                    rng.gen_range(piece.min..piece.max + 1)
                };
                for _ in 0..n {
                    out.push(piece.choices[rng.gen_range(0..piece.choices.len())]);
                }
            }
            out
        }
    }
}

/// Everything a test module needs, one `use` away.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Derive the per-test RNG seed from the test path (stable across runs).
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a over the name; any stable hash works.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `cases` random cases of `body`, panicking with the case inputs on
/// the first failure. Used by the [`proptest!`] expansion.
pub fn run_cases(
    test_name: &str,
    cases: u32,
    mut body: impl FnMut(&mut TestRng) -> Result<(), String>,
) {
    let mut rng = TestRng::seed_from_u64(seed_for(test_name));
    for case in 0..cases {
        if let Err(msg) = body(&mut rng) {
            panic!("[{test_name}] property failed at case {case}/{cases}: {msg}");
        }
    }
}

/// Randomized-property test harness (no shrinking; see crate docs).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@config ($cfg) $($rest)*);
    };
    (@config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    config.cases,
                    |__proptest_rng| {
                        $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a `proptest!` body (fails the case, not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!($($fmt)+));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Discard the current case (counts as a pass) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Choose among strategies, optionally weighted (`w => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

/// Weighted union of type-erased strategies (built by [`prop_oneof!`]).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T: Debug> OneOf<T> {
    /// Build from `(weight, strategy)` arms; weights must not all be 0.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        OneOf { arms, total }
    }
}

impl<T: Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut draw = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if draw < *w {
                return s.generate(rng);
            }
            draw -= w;
        }
        unreachable!("weights sum to total")
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::SeedableRng;

    #[test]
    fn string_regex_subset() {
        let s = crate::string::string_regex("[a-c]{2,4}x").unwrap();
        let mut rng = crate::TestRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&s, &mut rng);
            assert!(v.ends_with('x'));
            let body = &v[..v.len() - 1];
            assert!((2..=4).contains(&body.len()));
            assert!(body.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0u64..10, pair in (0i64..5, -1.0..1.0f64)) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 5 && pair.1 < 1.0);
        }

        #[test]
        fn filters_and_maps(v in crate::collection::vec((0u8..6).prop_map(|x| x * 2), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|x| x % 2 == 0));
        }

        #[test]
        fn oneof_weighted(x in prop_oneof![8 => 0u8..1, 1 => Just(9u8)]) {
            prop_assert!(x == 0 || x == 9);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_applies(x in 0u32..100) {
            prop_assert!(x < 100);
        }
    }
}
