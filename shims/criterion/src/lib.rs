//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so the bench harness
//! vendors the slice of criterion's API this workspace uses:
//! `Criterion::default().configure_from_args()`, `bench_function`,
//! `benchmark_group` (+ `sample_size`, `finish`), `Bencher::iter`, and
//! `final_summary`. Measurement is plain wall clock: one warmup call,
//! then `sample_size` timed iterations, reported as median / mean / min.
//! No statistical regression analysis, no HTML reports — numbers print
//! to stdout, which is what `EXPERIMENTS.md` records.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Default timed iterations per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Cap on a single benchmark's total measured time; sampling stops early
/// (with however many samples are in) once this budget is spent.
const TIME_BUDGET: Duration = Duration::from_secs(5);

/// Opaque value sink preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
    benches_run: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
            benches_run: 0,
        }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Override the default number of timed iterations.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into(), self.sample_size, &mut f);
        self.benches_run += 1;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Print the closing line (criterion API compatibility).
    pub fn final_summary(&self) {
        println!(
            "[criterion-shim] {} benchmark(s) complete",
            self.benches_run
        );
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Timed iterations for every benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        run_one(&format!("{}/{}", self.name, id.into()), samples, &mut f);
        self.parent.benches_run += 1;
        self
    }

    /// Close the group (criterion API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the work.
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    /// Measure `work` repeatedly (one warmup + up to `sample_size` timed
    /// runs, subject to the harness time budget).
    pub fn iter<O, W: FnMut() -> O>(&mut self, mut work: W) {
        black_box(work()); // warmup
        let budget_start = Instant::now();
        for _ in 0..self.target {
            let t = Instant::now();
            black_box(work());
            self.samples.push(t.elapsed());
            if budget_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        target: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<44} (no samples — closure never called iter)");
        return;
    }
    b.samples.sort();
    let n = b.samples.len();
    let median = b.samples[n / 2];
    let mean = b.samples.iter().sum::<Duration>() / n as u32;
    let min = b.samples[0];
    println!(
        "{id:<44} median {:>12} mean {:>12} min {:>12} ({n} samples)",
        fmt(median),
        fmt(mean),
        fmt(min)
    );
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_counts() {
        let mut c = Criterion::default().sample_size(3).configure_from_args();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function("inner", |b| b.iter(|| black_box(42)));
        g.finish();
        assert_eq!(c.benches_run, 2);
        c.final_summary();
    }
}
