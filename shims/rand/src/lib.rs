//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so the workspace vendors
//! the *exact* API surface its crates use: `StdRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_range`, and `Rng::gen_bool`. The generator is
//! SplitMix64 — deterministic per seed, statistically solid for the
//! synthetic-workload generators and property tests in this repo, and
//! *not* intended for cryptography.
//!
//! Determinism contract: for a fixed seed, the stream of draws is stable
//! across platforms and releases of this shim (tests and benches key off
//! seeds).

#![forbid(unsafe_code)]

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a `T` from the "standard" distribution (`[0,1)` for
/// floats, uniform over the full domain for integers and `bool`).
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Uniform sample from a (half-open) range. Panics on empty ranges.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zeros-ish weak start by pre-mixing the seed.
            let mut rng = StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            };
            let _ = rng.next_u64();
            rng
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Element types `gen_range` can sample uniformly.
///
/// One *generic* `SampleRange<T> for Range<T>` impl (below) keeps type
/// inference identical to the real crate: `arr[rng.gen_range(0..2)]`
/// must pin the literal range to `usize` through the index position,
/// which per-type impls would leave ambiguous.
pub trait SampleUniform: Copy {
    /// Draw one value uniformly from `[start, end)`.
    fn sample_in<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                assert!(start < end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128;
                // Modulo sampling: the bias is < span/2^64, immaterial for
                // workload generation.
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
        assert!(start < end, "cannot sample empty range");
        start + f64::standard_sample(rng) * (end - start)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
        assert!(start < end, "cannot sample empty range");
        start + f32::standard_sample(rng) * (end - start)
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10..20u64);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&y));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
